"""Table 3: benchmark characteristics and timing-analysis results (§5.3, §6.1).

Per benchmark: dynamic instruction count for one task, sub-task count,
tight/loose deadlines, WCET bound at 1 GHz, actual execution time on
``simple-fixed`` and on the complex processor at 1 GHz, and the two ratios
the paper discusses: WCET/simple (analyzer tightness; ~1 for most
benchmarks, ~2 for srt) and simple/complex (the ILP speedup the VISA
framework harvests; 3-6x in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    Setup,
    default_scale,
    format_table,
    setup,
)
from repro.experiments.parallel import parallel_map
from repro.pipelines.inorder import InOrderCore
from repro.pipelines.ooo.core import ComplexCore
from repro.visa.spec import VISASpec
from repro.workloads import WORKLOAD_NAMES


@dataclass
class Table3Row:
    name: str
    dyn_instructions: int
    subtasks: int
    deadline_tight_us: float
    deadline_loose_us: float
    wcet_us: float
    actual_simple_us: float
    actual_complex_us: float

    @property
    def wcet_over_simple(self) -> float:
        return self.wcet_us / self.actual_simple_us

    @property
    def simple_over_complex(self) -> float:
        return self.actual_simple_us / self.actual_complex_us


def measure_actual(prep: Setup, core_kind: str, freq_hz: float = 1e9) -> tuple[int, int]:
    """(cycles, instructions) for one steady-state task execution.

    The paper models periodic tasks executed 200 times in a row; the
    representative "actual time for 1 task" is therefore a warm execution
    (we run two instances and report the second).
    """
    spec = VISASpec()
    program = prep.workload.program
    machine = spec.machine(program)
    if core_kind == "simple":
        core = InOrderCore(machine, freq_hz=freq_hz)
    else:
        core = ComplexCore(machine, freq_hz=freq_hz)
    cycles = instructions = 0
    for seed in (0, 1):
        inputs = prep.workload.generate_inputs(seed)
        prep.workload.apply_inputs(machine, inputs)
        core.state.pc = program.entry
        core.state.halted = False
        if hasattr(core, "drain"):
            core.drain()
        start_cycle, start_instr = core.state.now, core.state.instret
        result = core.run()
        assert result.reason == "halt"
        prep.workload.check_outputs(machine, inputs)
        cycles = result.end_cycle - start_cycle
        instructions = core.state.instret - start_instr
    return cycles, instructions


def _cell(args: tuple[str, str]) -> Table3Row:
    """One benchmark's row; runs in a worker process."""
    name, scale = args
    prep = setup(name, scale)
    simple_cycles, instructions = measure_actual(prep, "simple")
    complex_cycles, _ = measure_actual(prep, "complex")
    return Table3Row(
        name=name,
        dyn_instructions=instructions,
        subtasks=prep.workload.subtasks,
        deadline_tight_us=prep.deadline_tight * 1e6,
        deadline_loose_us=prep.deadline_loose * 1e6,
        wcet_us=prep.wcet_1ghz_seconds * 1e6,
        actual_simple_us=simple_cycles / 1e3,
        actual_complex_us=complex_cycles / 1e3,
    )


def run(
    scale: str | None = None,
    jobs: int | None = None,
    no_cache: bool | None = None,
    no_jit: bool | None = None,
    ooo_sched: str | None = None,
) -> list[Table3Row]:
    """Run the experiment; returns one row per benchmark."""
    scale = scale or default_scale()
    return parallel_map(
        _cell, [(name, scale) for name in WORKLOAD_NAMES], jobs, no_cache,
        no_jit, ooo_sched,
    )


def render(rows: list[Table3Row]) -> str:
    """Render the measured rows as an aligned text table."""
    headers = [
        "bench", "dyn.inst", "#sub", "tight(us)", "loose(us)",
        "WCET(us)", "simple(us)", "complex(us)", "WCET/simple", "simple/complex",
    ]
    body = [
        [
            r.name,
            str(r.dyn_instructions),
            str(r.subtasks),
            f"{r.deadline_tight_us:.1f}",
            f"{r.deadline_loose_us:.1f}",
            f"{r.wcet_us:.1f}",
            f"{r.actual_simple_us:.1f}",
            f"{r.actual_complex_us:.1f}",
            f"{r.wcet_over_simple:.2f}",
            f"{r.simple_over_complex:.2f}",
        ]
        for r in rows
    ]
    return format_table(headers, body)


def main(
    jobs: int | None = None,
    no_cache: bool | None = None,
    no_jit: bool | None = None,
    ooo_sched: str | None = None,
) -> None:
    """Command-line entry point: run and print the experiment."""
    print("Table 3 reproduction (scale=%s)" % default_scale())
    print(render(run(jobs=jobs, no_cache=no_cache, no_jit=no_jit, ooo_sched=ooo_sched)))


if __name__ == "__main__":
    main()
