"""Set-associative cache model with true LRU replacement.

Used for both L1 caches (Table 1: 64 KB, 4-way set-associative, 64-byte
blocks, 1-cycle hit) and by the static cache simulator's *concrete*
counterpart in differential tests.

The model tracks tags only — data lives in :class:`MainMemory` — which is
standard for timing simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    Attributes:
        size_bytes: Total capacity.
        assoc: Set associativity (ways).
        block_bytes: Line size.
        hit_cycles: Access latency on a hit.
    """

    size_bytes: int = 64 * 1024
    assoc: int = 4
    block_bytes: int = 64
    hit_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.block_bytes):
            raise ValueError("cache size must divide evenly into sets")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)

    @property
    def block_shift(self) -> int:
        return self.block_bytes.bit_length() - 1

    def set_index(self, addr: int) -> int:
        return (addr >> self.block_shift) % self.num_sets

    def tag(self, addr: int) -> int:
        return addr >> self.block_shift

    def block_of(self, addr: int) -> int:
        """Block number (the unit of caching) containing ``addr``."""
        return addr >> self.block_shift


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, true-LRU, tag-only cache.

    Each set is a dict mapping resident block number to a recency stamp
    drawn from a cache-wide monotone counter; the LRU victim is the entry
    with the smallest stamp.  This keeps the hot hit path at two dict
    operations (membership + stamp update) instead of the O(assoc)
    ``list.remove``/``insert`` of an MRU-ordered list, while preserving
    exact true-LRU semantics (a differential test against an explicit LRU
    model guards this).  The pipeline hot loops additionally inline this
    access sequence — any change here must be mirrored there
    (:mod:`repro.pipelines.inorder`, :mod:`repro.pipelines.ooo.core`).
    """

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        self._sets: list[dict[int, int]] = [
            {} for _ in range(self.config.num_sets)
        ]
        self._tick = 0

    def access(self, addr: int) -> bool:
        """Access the block containing ``addr``; fill on miss.

        Returns:
            True on hit, False on miss.
        """
        block = self.config.block_of(addr)
        way = self._sets[self.config.set_index(addr)]
        tick = self._tick
        self._tick = tick + 1
        if block in way:
            way[block] = tick
            self.stats.hits += 1
            return True
        way[block] = tick
        if len(way) > self.config.assoc:
            del way[min(way, key=way.__getitem__)]
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """True if the block containing ``addr`` is resident (no side effects)."""
        return self.config.block_of(addr) in self._sets[self.config.set_index(addr)]

    def flush(self) -> None:
        """Invalidate every line (used to induce missed checkpoints, §6.2)."""
        for way in self._sets:
            way.clear()

    def resident_blocks(self) -> set[int]:
        """All currently cached block numbers (for differential tests)."""
        blocks: set[int] = set()
        for way in self._sets:
            blocks.update(way)
        return blocks

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able state: per-set ``[block, stamp]`` pairs + counters.

        Pairs are sorted by block so equal cache contents dump canonically.
        Restoring re-inserts in that order; behaviour is unaffected because
        eviction picks the minimum *stamp*, and stamps are unique (the tick
        counter is monotone and never reset, not even by :meth:`flush`).
        """
        return {
            "sets": [
                [[block, way[block]] for block in sorted(way)]
                for way in self._sets
            ],
            "tick": self._tick,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
        }

    def load_state(self, payload: dict) -> None:
        """Restore contents, recency stamps, and statistics."""
        self._sets = [
            {int(block): int(stamp) for block, stamp in pairs}
            for pairs in payload["sets"]
        ]
        self._tick = int(payload["tick"])
        self.stats = CacheStats(
            hits=int(payload["hits"]), misses=int(payload["misses"])
        )
