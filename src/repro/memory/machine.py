"""The simulated machine: memory, caches, and devices, bundled for a core.

``Machine`` owns everything *outside* the pipeline: main memory, the split
L1 caches, and the MMIO device page.  Architectural registers and the PC
belong to the core (so the complex core's simple mode naturally shares them).

The worst-case memory stall time is specified in nanoseconds (Table 1:
100 ns) because the cycle cost depends on the clock frequency; use
:func:`mem_stall_cycles` to convert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MemoryError_
from repro.isa import layout
from repro.isa.program import Program
from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory
from repro.memory.mmio import MMIODevices

#: Table 1: worst-case memory stall time.
WORST_CASE_MEM_STALL_NS = 100.0


def mem_stall_cycles(freq_hz: float, stall_ns: float = WORST_CASE_MEM_STALL_NS) -> int:
    """Memory stall penalty in cycles at ``freq_hz``.

    >>> mem_stall_cycles(1_000_000_000)
    100
    >>> mem_stall_cycles(100_000_000)
    10
    """
    return math.ceil(freq_hz * stall_ns * 1e-9)


class MemoryBus:
    """Serializing memory channel used by the complex core.

    Multiple outstanding misses contend: each occupies the bus for the full
    stall time, so effective latency can exceed the Table 1 worst case —
    exactly the behaviour §3.2 warns about (and why simple mode enforces a
    single outstanding request).
    """

    def __init__(self, penalty_cycles: int):
        self.penalty = penalty_cycles
        self.free_at = 0

    def request(self, cycle: int) -> int:
        """Issue a miss at ``cycle``; returns its completion cycle."""
        start = max(cycle, self.free_at)
        done = start + self.penalty
        self.free_at = done
        return done

    def reset(self) -> None:
        self.free_at = 0


@dataclass
class MachineConfig:
    """Cache geometry for the machine (defaults are Table 1)."""

    icache: CacheConfig = None  # type: ignore[assignment]
    dcache: CacheConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.icache is None:
            self.icache = CacheConfig()
        if self.dcache is None:
            self.dcache = CacheConfig()


class Machine:
    """Memory system + devices for one simulated processor."""

    def __init__(self, program: Program, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.program = program
        self.memory = MainMemory(program.data)
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.mmio = MMIODevices()
        # Store instruction words in memory too, like a real loader.
        for i, word in enumerate(program.words):
            self.memory.write(program.text_base + 4 * i, word)

    # -- data access (value + cacheability) ------------------------------------

    def data_read(self, addr: int, now: int) -> tuple[object, bool]:
        """Read for a load: returns (value, cacheable)."""
        if layout.is_mmio(addr):
            return self.mmio.read(addr, now), False
        self._check_data_addr(addr)
        return self.memory.read(addr), True

    def data_write(self, addr: int, value: object, now: int) -> bool:
        """Write for a store: returns cacheable flag."""
        if layout.is_mmio(addr):
            self.mmio.write(addr, value, now)
            return False
        self._check_data_addr(addr)
        self.memory.write(addr, value)
        return True

    def _check_data_addr(self, addr: int) -> None:
        if addr % 4:
            raise MemoryError_(f"misaligned data access at {addr:#x}")
        if self.program.contains(addr):
            raise MemoryError_(f"data access inside text segment at {addr:#x}")

    def read_data_words(self, base: int, count: int) -> list:
        """Batched read of ``count`` words from the data segment.

        Runtime-system plumbing (AET readback) goes through this single
        helper instead of ``count`` individual :meth:`MainMemory.read`
        calls; the address check covers the whole span.
        """
        self._check_data_addr(base)
        return self.memory.read_words(base, count)

    def write_data_words(self, base: int, values: list) -> None:
        """Batched write of consecutive words into the data segment."""
        self._check_data_addr(base)
        self.memory.write_words(base, values)

    def flush_caches_and_predictor(self) -> None:
        """Flush both caches (predictor flush is done by the core).

        Used by the misprediction-injection experiments (Figure 4).
        """
        self.icache.flush()
        self.dcache.flush()

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able state of everything outside the pipeline."""
        return {
            "memory": self.memory.dump_state(),
            "icache": self.icache.dump_state(),
            "dcache": self.dcache.dump_state(),
            "mmio": self.mmio.dump_state(),
        }

    def load_state(self, payload: dict) -> None:
        """Restore memory image, both caches, and the device page."""
        self.memory.load_state(payload["memory"])
        self.icache.load_state(payload["icache"])
        self.dcache.load_state(payload["dcache"])
        self.mmio.load_state(payload["mmio"])
