"""Memory-mapped device registers (paper §2.2, §4.3, §5.1).

The devices are timing-aware but not cycle-driven: the watchdog stores its
*expiry cycle* instead of being decremented every simulated cycle, which is
exactly equivalent and lets the event-driven cores skip idle cycles.

Devices:

* **Watchdog counter** — set or atomically advanced by sub-task snippets;
  expires when the current cycle reaches the programmed deadline.  A missed
  checkpoint is only *raised* when exceptions are unmasked (they are masked
  for non-real-time execution and while already in simple mode, §2.2).
* **Cycle counter** — free running; writes reset it (§4.3 uses it to measure
  per-sub-task actual execution times).
* **Frequency registers** — current and recovery frequency, set by the
  run-time system (§5.1).
* **Console** — a debug output port used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryError_
from repro.isa import layout


@dataclass
class MMIODevices:
    """State of the memory-mapped device page.

    All methods take ``now``, the core's current cycle, because device
    semantics (counter values, expiry) are defined in cycles.
    """

    #: When True (default), watchdog expiry never raises an exception.
    #: The VISA runtime unmasks it while a hard real-time task runs in
    #: complex mode.
    exceptions_masked: bool = True

    _cycle_base: int = 0
    _wd_enabled: bool = False
    _wd_expiry: int = 0  # absolute cycle at which the counter hits zero
    _wd_remaining_when_disabled: int = 0
    #: Sub-task marks passed since the watchdog was armed: the initial SET
    #: counts one (sub-task 0's prologue), each ADD one more.  Lets the
    #: runtime attribute a missed checkpoint to its sub-task (§4.3 AET
    #: scaling needs to know which AETs are simple-mode contaminated).
    wd_marks: int = 0
    freq_cur: int = 0
    freq_rec: int = 0
    console: list[tuple[int, int]] = field(default_factory=list)

    # -- watchdog -------------------------------------------------------------

    def watchdog_value(self, now: int) -> int:
        """Current counter value (clamped at zero once expired)."""
        if not self._wd_enabled:
            return self._wd_remaining_when_disabled
        return max(0, self._wd_expiry - now)

    def watchdog_expired(self, now: int) -> bool:
        """True when the watchdog is enabled and has reached zero."""
        return self._wd_enabled and now >= self._wd_expiry

    def watchdog_set(self, value: int, now: int) -> None:
        self.wd_marks = 1
        if self._wd_enabled:
            self._wd_expiry = now + value
        else:
            self._wd_remaining_when_disabled = value

    def watchdog_add(self, value: int, now: int) -> None:
        self.wd_marks += 1
        if self._wd_enabled:
            self._wd_expiry += value
        else:
            self._wd_remaining_when_disabled += value

    def watchdog_ctrl(self, value: int, now: int) -> None:
        enable = bool(value & 1)
        if enable and not self._wd_enabled:
            self._wd_expiry = now + self._wd_remaining_when_disabled
        elif not enable and self._wd_enabled:
            self._wd_remaining_when_disabled = max(0, self._wd_expiry - now)
        self._wd_enabled = enable

    @property
    def watchdog_enabled(self) -> bool:
        return self._wd_enabled

    # -- cycle counter ----------------------------------------------------------

    def cycle_count(self, now: int) -> int:
        return now - self._cycle_base

    def cycle_reset(self, value: int, now: int) -> None:
        self._cycle_base = now - value

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able device state (all fields, including the console log)."""
        return {
            "exceptions_masked": self.exceptions_masked,
            "cycle_base": self._cycle_base,
            "wd_enabled": self._wd_enabled,
            "wd_expiry": self._wd_expiry,
            "wd_remaining_when_disabled": self._wd_remaining_when_disabled,
            "wd_marks": self.wd_marks,
            "freq_cur": self.freq_cur,
            "freq_rec": self.freq_rec,
            "console": [[cycle, value] for cycle, value in self.console],
        }

    def load_state(self, payload: dict) -> None:
        """Restore every device register from a :meth:`dump_state` payload."""
        self.exceptions_masked = bool(payload["exceptions_masked"])
        self._cycle_base = int(payload["cycle_base"])
        self._wd_enabled = bool(payload["wd_enabled"])
        self._wd_expiry = int(payload["wd_expiry"])
        self._wd_remaining_when_disabled = int(
            payload["wd_remaining_when_disabled"]
        )
        self.wd_marks = int(payload["wd_marks"])
        self.freq_cur = int(payload["freq_cur"])
        self.freq_rec = int(payload["freq_rec"])
        self.console = [(int(c), int(v)) for c, v in payload["console"]]

    # -- generic load/store interface -------------------------------------------

    def read(self, addr: int, now: int) -> int:
        """Handle a load from the device page."""
        if addr == layout.WATCHDOG_COUNT:
            return self.watchdog_value(now)
        if addr == layout.WATCHDOG_CTRL:
            return 1 if self._wd_enabled else 0
        if addr == layout.CYCLE_COUNT:
            return self.cycle_count(now)
        if addr == layout.FREQ_CUR:
            return self.freq_cur
        if addr == layout.FREQ_REC:
            return self.freq_rec
        raise MemoryError_(f"read from unmapped device register {addr:#x}")

    def write(self, addr: int, value: object, now: int) -> None:
        """Handle a store to the device page."""
        if not isinstance(value, int):
            raise MemoryError_(f"device registers take integers, got {value!r}")
        if addr == layout.WATCHDOG_COUNT:
            self.watchdog_set(value, now)
        elif addr == layout.WATCHDOG_ADD:
            self.watchdog_add(value, now)
        elif addr == layout.WATCHDOG_CTRL:
            self.watchdog_ctrl(value, now)
        elif addr == layout.CYCLE_COUNT:
            self.cycle_reset(value, now)
        elif addr == layout.CONSOLE_OUT:
            self.console.append((now, value))
        elif addr == layout.FREQ_CUR:
            self.freq_cur = value
        elif addr == layout.FREQ_REC:
            self.freq_rec = value
        else:
            raise MemoryError_(f"write to unmapped device register {addr:#x}")
