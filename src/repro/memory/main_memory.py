"""Word-granular main memory.

The simulators are architectural: memory holds Python values (32-bit signed
integers or floats) at word-aligned byte addresses.  Cache models operate on
addresses only, so value typing does not affect timing.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.isa.semantics import to_s32


class MainMemory:
    """Sparse word-addressed backing store.

    Uninitialized words read as integer zero (like zeroed BSS).  Addresses
    must be word-aligned; the hardware has no sub-word accesses.
    """

    __slots__ = ("_words",)

    def __init__(self, image: dict[int, object] | None = None):
        self._words: dict[int, object] = {}
        if image:
            for addr, value in image.items():
                self.write(addr, value)

    def read(self, addr: int) -> object:
        """Read the word at ``addr`` (0 if never written)."""
        if addr % 4:
            raise MemoryError_(f"misaligned read at {addr:#x}")
        return self._words.get(addr, 0)

    def write(self, addr: int, value: object) -> None:
        """Write ``value`` (int or float) to the word at ``addr``."""
        if addr % 4:
            raise MemoryError_(f"misaligned write at {addr:#x}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MemoryError_(
                f"memory holds ints and floats, got {type(value).__name__}"
            )
        if isinstance(value, int):
            value = to_s32(value)
        self._words[addr] = value

    def read_int(self, addr: int) -> int:
        """Read a word that must be an integer (e.g. MMIO staging)."""
        value = self.read(addr)
        if not isinstance(value, int):
            raise MemoryError_(f"expected int at {addr:#x}, found {value!r}")
        return value

    def read_words(self, base: int, count: int) -> list:
        """Batched read of ``count`` consecutive words starting at ``base``.

        One bounds/alignment check covers the whole span, so per-word
        callers (the runtimes' AET/increment plumbing) pay a single call
        instead of ``count`` of them.
        """
        if base % 4:
            raise MemoryError_(f"misaligned read at {base:#x}")
        words = self._words
        return [words.get(base + 4 * k, 0) for k in range(count)]

    def write_words(self, base: int, values: list) -> None:
        """Batched write of consecutive words starting at ``base``."""
        if base % 4:
            raise MemoryError_(f"misaligned write at {base:#x}")
        words = self._words
        for k, value in enumerate(values):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MemoryError_(
                    f"memory holds ints and floats, got {type(value).__name__}"
                )
            if isinstance(value, int):
                value = to_s32(value)
            words[base + 4 * k] = value

    def snapshot(self) -> dict[int, object]:
        """Copy of all written words (for test assertions)."""
        return dict(self._words)

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> list:
        """JSON-able state: sorted ``[addr, value]`` pairs.

        Sorting makes the payload canonical — the same memory image always
        produces the same dump regardless of write order — which the
        snapshot digests rely on.
        """
        return [[addr, self._words[addr]] for addr in sorted(self._words)]

    def load_state(self, pairs: list) -> None:
        """Replace the whole image with a :meth:`dump_state` payload.

        Values were normalized (``to_s32``) before dumping, so they are
        installed directly.
        """
        self._words = {int(addr): value for addr, value in pairs}

    def __len__(self) -> int:
        return len(self._words)
