"""Memory subsystem: main memory, caches, MMIO devices, and the machine.

The :class:`~repro.memory.machine.Machine` bundles everything a core needs:
word-granular main memory, split L1 instruction/data caches (Table 1 of the
paper: 64 KB, 4-way, 64 B blocks, 1-cycle hits), and the memory-mapped
device page (watchdog counter, cycle counter, frequency registers).
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.machine import Machine
from repro.memory.main_memory import MainMemory
from repro.memory.mmio import MMIODevices

__all__ = ["Cache", "CacheConfig", "Machine", "MainMemory", "MMIODevices"]
