"""Workload infrastructure: compiled benchmark + inputs + reference model.

A :class:`Workload` owns the MiniC source of one C-lab kernel, compiles it
on demand, generates deterministic pseudo-random inputs per task instance,
loads them into a machine's data segment, and checks outputs against a pure
Python reference implementation (so both pipelines are validated
functionally, not just for timing).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.isa.program import Program
from repro.memory.machine import Machine
from repro.minicc import compile_source

InputGen = Callable[[random.Random], list]
Reference = Callable[[dict[str, list]], dict[str, list]]


@dataclass(frozen=True)
class InputSpec:
    """One input array: data-segment symbol + per-instance generator."""

    symbol: str
    generate: InputGen


@dataclass
class Workload:
    """A compiled benchmark with its input generator and reference model.

    Attributes:
        name: Benchmark name (``adpcm`` .. ``srt``).
        scale: ``"default"`` (laptop-sized) or ``"paper"`` (original sizes).
        source: MiniC source text.
        subtasks: Number of sub-tasks marked in the source.
        inputs: Input arrays regenerated for every task instance.
        outputs: Data-segment symbols holding results to verify.
        reference: Pure-Python model mapping inputs to expected outputs.
        params: Benchmark size parameters, for reporting.
    """

    name: str
    scale: str
    source: str
    subtasks: int
    inputs: list[InputSpec]
    outputs: dict[str, int]  # symbol -> number of words to read back
    reference: Reference
    params: dict[str, int] = field(default_factory=dict)
    _program: Program | None = field(default=None, repr=False)

    @property
    def program(self) -> Program:
        """The compiled program (compiled once, cached)."""
        if self._program is None:
            self._program = compile_source(self.source)
            if self._program.num_subtasks != self.subtasks:
                raise ReproError(
                    f"{self.name}: source marks "
                    f"{self._program.num_subtasks} sub-tasks, "
                    f"expected {self.subtasks}"
                )
        return self._program

    def generate_inputs(self, seed: int) -> dict[str, list]:
        """Deterministic inputs for task instance ``seed``.

        The per-workload salt uses a *stable* hash (CRC-32), not Python's
        per-process-randomized ``hash()``, so the exact same inputs — and
        therefore the exact same cycle counts — reproduce across runs.
        """
        salt = zlib.crc32(self.name.encode()) & 0xFFFF
        rng = random.Random(salt * 1_000_003 + seed)
        return {spec.symbol: spec.generate(rng) for spec in self.inputs}

    def apply_inputs(self, machine: Machine, inputs: dict[str, list]) -> None:
        """Write input arrays into the machine's data segment."""
        for symbol, values in inputs.items():
            base = self.program.address_of(symbol)
            for i, value in enumerate(values):
                machine.memory.write(base + 4 * i, value)

    def read_outputs(self, machine: Machine) -> dict[str, list]:
        """Read declared output arrays back from the data segment."""
        out: dict[str, list] = {}
        for symbol, count in self.outputs.items():
            base = self.program.address_of(symbol)
            out[symbol] = [machine.memory.read(base + 4 * i) for i in range(count)]
        return out

    def check_outputs(
        self, machine: Machine, inputs: dict[str, list], rel_tol: float = 1e-9
    ) -> None:
        """Assert machine outputs match the reference model.

        Raises:
            ReproError: on any mismatch.
        """
        expected = self.reference(inputs)
        actual = self.read_outputs(machine)
        for symbol, want in expected.items():
            got = actual[symbol]
            if len(got) != len(want):
                raise ReproError(
                    f"{self.name}: {symbol} length {len(got)} != {len(want)}"
                )
            for i, (g, w) in enumerate(zip(got, want)):
                if isinstance(w, float):
                    ok = abs(g - w) <= rel_tol * max(1.0, abs(w))
                else:
                    ok = g == w
                if not ok:
                    raise ReproError(
                        f"{self.name}: {symbol}[{i}] = {g!r}, expected {w!r}"
                    )


def chunk_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous chunks.

    Earlier chunks get the remainder, matching how one peels loop
    iterations off by hand.

    >>> chunk_ranges(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    """
    if parts <= 0 or total < parts:
        raise ValueError(f"cannot split {total} iterations into {parts} chunks")
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
