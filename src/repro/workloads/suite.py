"""Benchmark registry and scale presets.

Scales:

* ``tiny`` — smallest inputs that still exercise every sub-task; used by
  the unit/integration test suite.
* ``default`` — laptop-sized inputs for the benchmark harness (the pure
  Python cycle-level simulator cannot run the paper's 70 K–2 M instruction
  tasks 200 times per configuration in reasonable time; see DESIGN.md §6).
* ``paper`` — the original C-lab input sizes, for patient users.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.clab import adpcm, cnt, crc, fft, fir, lms, mm, srt

_MAKERS = {
    "adpcm": adpcm.make,
    "cnt": cnt.make,
    "fft": fft.make,
    "lms": lms.make,
    "mm": mm.make,
    "srt": srt.make,
    # Extra suite members, not part of the paper's evaluation:
    "crc": crc.make,
    "fir": fir.make,
}

#: The six benchmarks the paper evaluates (Table 3); experiment drivers
#: iterate over these.
WORKLOAD_NAMES = ("adpcm", "cnt", "fft", "lms", "mm", "srt")
#: Additional C-lab-family kernels shipped for library completeness.
EXTRA_WORKLOAD_NAMES = ("crc", "fir")
SCALES = ("tiny", "default", "paper")

_CACHE: dict[tuple[str, str], Workload] = {}


def get_workload(name: str, scale: str = "default") -> Workload:
    """Return (and cache) the named workload at the given scale.

    Raises:
        KeyError: for unknown names or scales.
    """
    if name not in _MAKERS:
        raise KeyError(f"unknown workload {name!r}; known: {WORKLOAD_NAMES}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {SCALES}")
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = _MAKERS[name](scale)
    return _CACHE[key]


def all_workloads(scale: str = "default") -> list[Workload]:
    """All six C-lab workloads at the given scale."""
    return [get_workload(name, scale) for name in WORKLOAD_NAMES]
