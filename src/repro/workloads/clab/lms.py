"""``lms`` — least-mean-squares adaptive FIR filter (C-lab ``lms``).

Per sample: FIR output from the current weights, error against the desired
signal, then the LMS weight update.  Sub-tasks (10) are chunks of the
sample loop; the weight-clearing prologue merges into the first sub-task.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {
    "tiny": {"nsamp": 12, "ntap": 8},
    "default": {"nsamp": 40, "ntap": 16},
    "paper": {"nsamp": 256, "ntap": 32},
}
SUBTASKS = 10
MU = 0.05


def _source(nsamp: int, ntap: int) -> str:
    total = nsamp + ntap  # input has NTAP-1 history samples in front
    parts = [
        f"float x[{total}];",
        f"float d[{nsamp}];",
        f"float w[{ntap}];",
        f"float err[{nsamp}];",
        "",
        "void main() {",
        "  int n; int k;",
        "  float y; float e;",
    ]
    for t, (start, end) in enumerate(chunk_ranges(nsamp, SUBTASKS)):
        parts.append(f"  __subtask({t});")
        if t == 0:
            parts += [
                f"  for (k = 0; k < {ntap}; k = k + 1) {{",
                "    w[k] = 0.0;",
                "  }",
            ]
        parts += [
            f"  for (n = {start}; n < {end}; n = n + 1) {{",
            "    y = 0.0;",
            f"    for (k = 0; k < {ntap}; k = k + 1) {{",
            f"      y = y + w[k] * x[n + {ntap} - 1 - k];",
            "    }",
            "    e = d[n] - y;",
            "    err[n] = e;",
            f"    for (k = 0; k < {ntap}; k = k + 1) {{",
            f"      w[k] = w[k] + {MU!r} * e * x[n + {ntap} - 1 - k];",
            "    }",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _reference(nsamp: int, ntap: int):
    def ref(inputs: dict[str, list]) -> dict[str, list]:
        x = inputs["x"]
        d = inputs["d"]
        w = [0.0] * ntap
        err = [0.0] * nsamp
        for n in range(nsamp):
            y = 0.0
            for k in range(ntap):
                y = y + w[k] * x[n + ntap - 1 - k]
            e = d[n] - y
            err[n] = e
            for k in range(ntap):
                w[k] = w[k] + MU * e * x[n + ntap - 1 - k]
        return {"w": w, "err": err}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the lms workload at the given scale preset."""
    sizes = SIZES[scale]
    nsamp, ntap = sizes["nsamp"], sizes["ntap"]

    def gen_x(rng: random.Random) -> list[float]:
        return [rng.uniform(-1.0, 1.0) for _ in range(nsamp + ntap)]

    def gen_d(rng: random.Random) -> list[float]:
        return [rng.uniform(-1.0, 1.0) for _ in range(nsamp)]

    return Workload(
        name="lms",
        scale=scale,
        source=_source(nsamp, ntap),
        subtasks=SUBTASKS,
        inputs=[InputSpec("x", gen_x), InputSpec("d", gen_d)],
        outputs={"w": ntap, "err": nsamp},
        reference=_reference(nsamp, ntap),
        params=dict(sizes),
    )
