"""``cnt`` — count and sum positive/negative matrix elements.

C-lab's ``cnt`` scans an integer matrix, counting and summing positive and
negative entries.  Sub-tasks (5, per Table 3) are chunks of the outer row
loop; initialization merges into the first sub-task and the result stores
into the last.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 10, "default": 20, "paper": 64}
SUBTASKS = 5


def _source(n: int) -> str:
    rows = chunk_ranges(n, SUBTASKS)
    parts = [
        f"int mat[{n}][{n}];",
        "int results[4];",
        "",
        "void main() {",
        "  int i; int j; int x;",
        "  int poscnt; int possum; int negcnt; int negsum;",
    ]
    for k, (start, end) in enumerate(rows):
        parts.append(f"  __subtask({k});")
        if k == 0:
            parts.append("  poscnt = 0; possum = 0; negcnt = 0; negsum = 0;")
        parts += [
            f"  for (i = {start}; i < {end}; i = i + 1) {{",
            f"    for (j = 0; j < {n}; j = j + 1) {{",
            "      x = mat[i][j];",
            "      if (x > 0) {",
            "        poscnt = poscnt + 1;",
            "        possum = possum + x;",
            "      } else {",
            "        negcnt = negcnt + 1;",
            "        negsum = negsum + x;",
            "      }",
            "    }",
            "  }",
        ]
    parts += [
        "  results[0] = poscnt;",
        "  results[1] = possum;",
        "  results[2] = negcnt;",
        "  results[3] = negsum;",
        "  __taskend();",
        "}",
    ]
    return "\n".join(parts) + "\n"


def _reference(n: int):
    def ref(inputs: dict[str, list]) -> dict[str, list]:
        mat = inputs["mat"]
        poscnt = possum = negcnt = negsum = 0
        for x in mat:
            if x > 0:
                poscnt += 1
                possum += x
            else:
                negcnt += 1
                negsum += x
        return {"results": [poscnt, possum, negcnt, negsum]}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the cnt workload at the given scale preset."""
    n = SIZES[scale]

    def gen_mat(rng: random.Random) -> list[int]:
        # The original C-lab cnt fills the matrix with rand() % 25, so the
        # sign test is heavily biased (zeros take the "negative" path).
        return [rng.randint(0, 24) for _ in range(n * n)]

    return Workload(
        name="cnt",
        scale=scale,
        source=_source(n),
        subtasks=SUBTASKS,
        inputs=[InputSpec("mat", gen_mat)],
        outputs={"results": 4},
        reference=_reference(n),
        params={"n": n},
    )
