"""``mm`` — integer matrix multiplication (C-lab ``matmult``).

Sub-tasks (10) are chunks of the outer row loop of the product.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 10, "default": 12, "paper": 50}
SUBTASKS = 10


def _source(n: int) -> str:
    rows = chunk_ranges(n, SUBTASKS)
    parts = [
        f"int A[{n}][{n}];",
        f"int B[{n}][{n}];",
        f"int C[{n}][{n}];",
        "",
        "void main() {",
        "  int i; int j; int k; int sum;",
    ]
    for t, (start, end) in enumerate(rows):
        parts += [
            f"  __subtask({t});",
            f"  for (i = {start}; i < {end}; i = i + 1) {{",
            f"    for (j = 0; j < {n}; j = j + 1) {{",
            "      sum = 0;",
            f"      for (k = 0; k < {n}; k = k + 1) {{",
            "        sum = sum + A[i][k] * B[k][j];",
            "      }",
            "      C[i][j] = sum;",
            "    }",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _reference(n: int):
    def ref(inputs: dict[str, list]) -> dict[str, list]:
        a, b = inputs["A"], inputs["B"]
        c = [0] * (n * n)
        for i in range(n):
            for j in range(n):
                total = 0
                for k in range(n):
                    total += a[i * n + k] * b[k * n + j]
                c[i * n + j] = total
        return {"C": c}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the mm workload at the given scale preset."""
    n = SIZES[scale]

    def gen(rng: random.Random) -> list[int]:
        return [rng.randint(-10, 10) for _ in range(n * n)]

    return Workload(
        name="mm",
        scale=scale,
        source=_source(n),
        subtasks=SUBTASKS,
        inputs=[InputSpec("A", gen), InputSpec("B", gen)],
        outputs={"C": n * n},
        reference=_reference(n),
        params={"n": n},
    )
