"""The six C-lab kernels: adpcm, cnt, fft, lms, mm, srt."""
