"""``fir`` — integer FIR filter (C-lab ``fir``).

Another non-evaluated member of the benchmark family: a fixed-point FIR
filter over a sample buffer.  Sub-tasks are chunks of the output loop.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {
    "tiny": {"nsamp": 24, "ntap": 8},
    "default": {"nsamp": 64, "ntap": 16},
    "paper": {"nsamp": 512, "ntap": 32},
}
SUBTASKS = 8


def _coefficients(ntap: int) -> list[int]:
    # A symmetric low-pass-ish integer kernel.
    half = ntap // 2
    return [1 + min(i, ntap - 1 - i) * 3 for i in range(ntap)] + [0] * 0


def _fmt(values: list[int]) -> str:
    return ", ".join(str(v) for v in values)


def _source(nsamp: int, ntap: int) -> str:
    coef = _coefficients(ntap)
    total = nsamp + ntap
    parts = [
        f"int coef[{ntap}] = {{ {_fmt(coef)} }};",
        f"int x[{total}];",
        f"int y[{nsamp}];",
        "",
        "void main() {",
        "  int n; int k; int acc;",
    ]
    for t, (start, end) in enumerate(chunk_ranges(nsamp, SUBTASKS)):
        parts += [
            f"  __subtask({t});",
            f"  for (n = {start}; n < {end}; n = n + 1) {{",
            "    acc = 0;",
            f"    for (k = 0; k < {ntap}; k = k + 1) {{",
            "      acc = acc + coef[k] * x[n + k];",
            "    }",
            "    y[n] = acc >> 6;",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _reference(nsamp: int, ntap: int):
    coef = _coefficients(ntap)

    def ref(inputs: dict[str, list]) -> dict[str, list]:
        x = inputs["x"]
        y = []
        for n in range(nsamp):
            acc = 0
            for k in range(ntap):
                acc += coef[k] * x[n + k]
            y.append(acc >> 6)
        return {"y": y}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the fir workload at the given scale preset."""
    sizes = SIZES[scale]
    nsamp, ntap = sizes["nsamp"], sizes["ntap"]

    def gen(rng: random.Random) -> list[int]:
        return [rng.randint(-1000, 1000) for _ in range(nsamp + ntap)]

    return Workload(
        name="fir",
        scale=scale,
        source=_source(nsamp, ntap),
        subtasks=SUBTASKS,
        inputs=[InputSpec("x", gen)],
        outputs={"y": nsamp},
        reference=_reference(nsamp, ntap),
        params=dict(sizes),
    )
