"""``adpcm`` — IMA ADPCM speech encode + decode (C-lab ``adpcm``).

Encodes a PCM sample buffer to 4-bit ADPCM codes, then decodes them back.
Sub-tasks (8, per Table 3): four chunks of the encode loop and four chunks
of the decode loop; predictor-state initialization merges into the first
sub-task.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 16, "default": 80, "paper": 8000}
SUBTASKS = 8

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8]


def _fmt(values: list[int], per_line: int = 10) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        lines.append(", ".join(str(v) for v in values[start:start + per_line]))
    return ",\n    ".join(lines)


def _source(nsamp: int) -> str:
    enc_chunks = chunk_ranges(nsamp, SUBTASKS // 2)
    dec_chunks = chunk_ranges(nsamp, SUBTASKS // 2)
    parts = [
        f"int steptab[{len(STEP_TABLE)}] = {{\n    {_fmt(STEP_TABLE)}\n}};",
        f"int idxtab[8] = {{ {', '.join(map(str, INDEX_TABLE))} }};",
        f"int pcm[{nsamp}];",
        f"int code[{nsamp}];",
        f"int out[{nsamp}];",
        "int valpred;",
        "int valindex;",
        "int dvalpred;",
        "int dvalindex;",
        "",
        "int encode_one(int sample) {",
        "  int delta; int sign; int step; int vpdiff; int c;",
        "  delta = sample - valpred;",
        "  sign = 0;",
        "  if (delta < 0) {",
        "    sign = 8;",
        "    delta = -delta;",
        "  }",
        "  step = steptab[valindex];",
        "  c = 0;",
        "  vpdiff = step >> 3;",
        "  if (delta >= step) {",
        "    c = 4;",
        "    delta = delta - step;",
        "    vpdiff = vpdiff + step;",
        "  }",
        "  step = step >> 1;",
        "  if (delta >= step) {",
        "    c = c | 2;",
        "    delta = delta - step;",
        "    vpdiff = vpdiff + step;",
        "  }",
        "  step = step >> 1;",
        "  if (delta >= step) {",
        "    c = c | 1;",
        "    vpdiff = vpdiff + step;",
        "  }",
        "  if (sign > 0) {",
        "    valpred = valpred - vpdiff;",
        "  } else {",
        "    valpred = valpred + vpdiff;",
        "  }",
        "  if (valpred > 32767) { valpred = 32767; }",
        "  if (valpred < -32768) { valpred = -32768; }",
        "  valindex = valindex + idxtab[c];",
        "  if (valindex < 0) { valindex = 0; }",
        "  if (valindex > 88) { valindex = 88; }",
        "  return c | sign;",
        "}",
        "",
        "int decode_one(int c) {",
        "  int sign; int step; int vpdiff; int cm;",
        "  sign = c & 8;",
        "  cm = c & 7;",
        "  step = steptab[dvalindex];",
        "  vpdiff = step >> 3;",
        "  if (cm & 4) { vpdiff = vpdiff + step; }",
        "  if (cm & 2) { vpdiff = vpdiff + (step >> 1); }",
        "  if (cm & 1) { vpdiff = vpdiff + (step >> 2); }",
        "  if (sign > 0) {",
        "    dvalpred = dvalpred - vpdiff;",
        "  } else {",
        "    dvalpred = dvalpred + vpdiff;",
        "  }",
        "  if (dvalpred > 32767) { dvalpred = 32767; }",
        "  if (dvalpred < -32768) { dvalpred = -32768; }",
        "  dvalindex = dvalindex + idxtab[cm];",
        "  if (dvalindex < 0) { dvalindex = 0; }",
        "  if (dvalindex > 88) { dvalindex = 88; }",
        "  return dvalpred;",
        "}",
        "",
        "void main() {",
        "  int n;",
    ]
    for t, (start, end) in enumerate(enc_chunks):
        parts.append(f"  __subtask({t});")
        if t == 0:
            parts += [
                "  valpred = 0; valindex = 0;",
                "  dvalpred = 0; dvalindex = 0;",
            ]
        parts += [
            f"  for (n = {start}; n < {end}; n = n + 1) {{",
            "    code[n] = encode_one(pcm[n]);",
            "  }",
        ]
    for t, (start, end) in enumerate(dec_chunks):
        parts += [
            f"  __subtask({SUBTASKS // 2 + t});",
            f"  for (n = {start}; n < {end}; n = n + 1) {{",
            "    out[n] = decode_one(code[n]);",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _encode_one(sample: int, state: dict) -> int:
    delta = sample - state["valpred"]
    sign = 0
    if delta < 0:
        sign = 8
        delta = -delta
    step = STEP_TABLE[state["valindex"]]
    c = 0
    vpdiff = step >> 3
    if delta >= step:
        c = 4
        delta -= step
        vpdiff += step
    step >>= 1
    if delta >= step:
        c |= 2
        delta -= step
        vpdiff += step
    step >>= 1
    if delta >= step:
        c |= 1
        vpdiff += step
    if sign > 0:
        state["valpred"] -= vpdiff
    else:
        state["valpred"] += vpdiff
    state["valpred"] = max(-32768, min(32767, state["valpred"]))
    state["valindex"] = max(0, min(88, state["valindex"] + INDEX_TABLE[c]))
    return c | sign


def _decode_one(c: int, state: dict) -> int:
    sign = c & 8
    cm = c & 7
    step = STEP_TABLE[state["dvalindex"]]
    vpdiff = step >> 3
    if cm & 4:
        vpdiff += step
    if cm & 2:
        vpdiff += step >> 1
    if cm & 1:
        vpdiff += step >> 2
    if sign > 0:
        state["dvalpred"] -= vpdiff
    else:
        state["dvalpred"] += vpdiff
    state["dvalpred"] = max(-32768, min(32767, state["dvalpred"]))
    state["dvalindex"] = max(0, min(88, state["dvalindex"] + INDEX_TABLE[cm]))
    return state["dvalpred"]


def _reference(nsamp: int):
    def ref(inputs: dict[str, list]) -> dict[str, list]:
        state = {"valpred": 0, "valindex": 0, "dvalpred": 0, "dvalindex": 0}
        codes = [_encode_one(s, state) for s in inputs["pcm"]]
        out = [_decode_one(c, state) for c in codes]
        return {"code": codes, "out": out}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the adpcm workload at the given scale preset."""
    nsamp = SIZES[scale]

    def gen_pcm(rng: random.Random) -> list[int]:
        # Speech-like random walk bounded to 16-bit samples.
        samples = []
        value = 0
        for _ in range(nsamp):
            value += rng.randint(-2000, 2000)
            value = max(-32000, min(32000, value))
            samples.append(value)
        return samples

    return Workload(
        name="adpcm",
        scale=scale,
        source=_source(nsamp),
        subtasks=SUBTASKS,
        inputs=[InputSpec("pcm", gen_pcm)],
        outputs={"code": nsamp, "out": nsamp},
        reference=_reference(nsamp),
        params={"nsamp": nsamp},
    )
