"""``srt`` — bubblesort (C-lab ``srt``/``bsort``).

The paper singles this kernel out (§6.1): static analysis over-estimates it
by ~2x because (a) the swap test is a forward branch the analyzer must
assume taken, and (b) the inner loop shrinks every pass (triangular) and an
early exit fires once the array is sorted, while the analyzer must assume
the full rectangular iteration space.  Both sources of pessimism are
present here: the inner loop carries a constant ``__loopbound`` (its trip
count is data-dependent) and a ``swapped`` flag skips remaining passes.

Sub-tasks (10) are chunks of the outer pass loop.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 20, "default": 40, "paper": 400}
SUBTASKS = 10


def _source(n: int, subtasks: int = SUBTASKS) -> str:
    passes = chunk_ranges(n - 1, subtasks)
    parts = [
        f"int arr[{n}];",
        "",
        "void main() {",
        "  int i; int j; int t; int swapped; int done;",
    ]
    for k, (start, end) in enumerate(passes):
        parts.append(f"  __subtask({k});")
        if k == 0:
            parts.append("  done = 0;")
        parts += [
            f"  for (i = {start}; i < {end}; i = i + 1) {{",
            "    if (done == 0) {",
            "      swapped = 0;",
            # Data-dependent trip count: the analyzer must use the bound.
            f"      for (j = 0; j < {n} - 1 - i; j = j + 1) "
            f"__loopbound({n - 1}) {{",
            "        if (arr[j] > arr[j + 1]) {",
            "          t = arr[j];",
            "          arr[j] = arr[j + 1];",
            "          arr[j + 1] = t;",
            "          swapped = 1;",
            "        }",
            "      }",
            "      if (swapped == 0) {",
            "        done = 1;",
            "      }",
            "    }",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _reference(n: int):
    def ref(inputs: dict[str, list]) -> dict[str, list]:
        return {"arr": sorted(inputs["arr"])}

    return ref


def make(scale: str = "default", subtasks: int = SUBTASKS) -> Workload:
    """srt workload; ``subtasks`` overrides the Table 3 count (used by the
    checkpoint-granularity ablation)."""
    n = SIZES[scale]

    def gen(rng: random.Random) -> list[int]:
        return [rng.randint(-10_000, 10_000) for _ in range(n)]

    return Workload(
        name="srt",
        scale=scale,
        source=_source(n, subtasks),
        subtasks=subtasks,
        inputs=[InputSpec("arr", gen)],
        outputs={"arr": n},
        reference=_reference(n),
        params={"n": n},
    )
