"""``fft`` — radix-2 decimation-in-time FFT (C-lab ``fft1``).

Structure: bit-reversal permutation (sub-task 0), one sub-task per
butterfly stage (log2 N stages, each generated with constant strides so
loop bounds are inferable), and the magnitude computation split into enough
chunks to reach 10 sub-tasks total (Table 3).

Twiddle factors and the bit-reversal table are compile-time constant data,
as a real-time DSP kernel would ship them.
"""

from __future__ import annotations

import math
import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 32, "default": 64, "paper": 256}
SUBTASKS = 10


def _bit_reverse_table(n: int) -> list[int]:
    bits = n.bit_length() - 1
    return [int(f"{i:0{bits}b}"[::-1], 2) for i in range(n)]


def _twiddles(n: int) -> tuple[list[float], list[float]]:
    wre = [math.cos(2.0 * math.pi * t / n) for t in range(n // 2)]
    wim = [-math.sin(2.0 * math.pi * t / n) for t in range(n // 2)]
    return wre, wim


def _fmt(values: list, per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        lines.append(", ".join(repr(v) for v in values[start:start + per_line]))
    return ",\n    ".join(lines)


def _source(n: int) -> str:
    stages = n.bit_length() - 1
    mag_chunks = SUBTASKS - 1 - stages
    if mag_chunks < 1:
        raise ValueError(f"fft size {n} too large for {SUBTASKS} sub-tasks")
    wre, wim = _twiddles(n)
    brt = _bit_reverse_table(n)
    parts = [
        f"float re[{n}];",
        f"float im[{n}];",
        f"float mag[{n}];",
        f"float wre[{n // 2}] = {{\n    {_fmt(wre)}\n}};",
        f"float wim[{n // 2}] = {{\n    {_fmt(wim)}\n}};",
        f"int brt[{n}] = {{\n    {_fmt(brt, 16)}\n}};",
        "",
        "void main() {",
        "  int i; int j; int k; int a; int b;",
        "  float tr; float ti; float wr; float wi; float xr; float xi;",
        "  __subtask(0);",
        f"  for (i = 0; i < {n}; i = i + 1) {{",
        "    j = brt[i];",
        "    if (j > i) {",
        "      xr = re[i]; re[i] = re[j]; re[j] = xr;",
        "      xi = im[i]; im[i] = im[j]; im[j] = xi;",
        "    }",
        "  }",
    ]
    for s in range(stages):
        half = 1 << s
        step = half * 2
        stride = n // step
        parts += [
            f"  __subtask({s + 1});",
            f"  for (k = 0; k < {n}; k = k + {step}) {{",
            f"    for (j = 0; j < {half}; j = j + 1) {{",
            f"      wr = wre[j * {stride}];",
            f"      wi = wim[j * {stride}];",
            f"      a = k + j;",
            f"      b = a + {half};",
            "      tr = wr * re[b] - wi * im[b];",
            "      ti = wr * im[b] + wi * re[b];",
            "      re[b] = re[a] - tr;",
            "      im[b] = im[a] - ti;",
            "      re[a] = re[a] + tr;",
            "      im[a] = im[a] + ti;",
            "    }",
            "  }",
        ]
    for c, (start, end) in enumerate(chunk_ranges(n, mag_chunks)):
        parts += [
            f"  __subtask({stages + 1 + c});",
            f"  for (i = {start}; i < {end}; i = i + 1) {{",
            "    mag[i] = re[i] * re[i] + im[i] * im[i];",
            "  }",
        ]
    parts += ["  __taskend();", "}"]
    return "\n".join(parts) + "\n"


def _reference(n: int):
    wre, wim = _twiddles(n)
    brt = _bit_reverse_table(n)

    def ref(inputs: dict[str, list]) -> dict[str, list]:
        re = list(inputs["re"])
        im = list(inputs["im"])
        for i in range(n):
            j = brt[i]
            if j > i:
                re[i], re[j] = re[j], re[i]
                im[i], im[j] = im[j], im[i]
        stages = n.bit_length() - 1
        for s in range(stages):
            half = 1 << s
            step = half * 2
            stride = n // step
            for k in range(0, n, step):
                for j in range(half):
                    wr = wre[j * stride]
                    wi = wim[j * stride]
                    a = k + j
                    b = a + half
                    tr = wr * re[b] - wi * im[b]
                    ti = wr * im[b] + wi * re[b]
                    re[b] = re[a] - tr
                    im[b] = im[a] - ti
                    re[a] = re[a] + tr
                    im[a] = im[a] + ti
        mag = [re[i] * re[i] + im[i] * im[i] for i in range(n)]
        return {"re": re, "im": im, "mag": mag}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the fft workload at the given scale preset."""
    n = SIZES[scale]

    def gen_signal(rng: random.Random) -> list[float]:
        return [rng.uniform(-1.0, 1.0) for _ in range(n)]

    return Workload(
        name="fft",
        scale=scale,
        source=_source(n),
        subtasks=SUBTASKS,
        inputs=[InputSpec("re", gen_signal), InputSpec("im", gen_signal)],
        outputs={"re": n, "im": n, "mag": n},
        reference=_reference(n),
        params={"n": n},
    )
