"""``crc`` — table-driven CRC-16/MODBUS over a message buffer.

Not part of the paper's six evaluated benchmarks, but a standard member of
the C-lab/WCET-benchmark family; included so the library covers the suite
users expect.  Sub-tasks are chunks of the message loop.
"""

from __future__ import annotations

import random

from repro.workloads.base import InputSpec, Workload, chunk_ranges

SIZES = {"tiny": 32, "default": 128, "paper": 1024}
SUBTASKS = 8
POLY = 0xA001  # reflected CRC-16/IBM


def _crc_table() -> list[int]:
    table = []
    for i in range(256):
        value = i
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ POLY
            else:
                value >>= 1
        table.append(value)
    return table


def _fmt(values: list[int], per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        lines.append(", ".join(str(v) for v in values[start:start + per_line]))
    return ",\n    ".join(lines)


def _source(n: int) -> str:
    table = _crc_table()
    parts = [
        f"int crctab[256] = {{\n    {_fmt(table)}\n}};",
        f"int msg[{n}];",
        "int crc_out[1];",
        "",
        "void main() {",
        "  int i; int crc; int idx;",
    ]
    for t, (start, end) in enumerate(chunk_ranges(n, SUBTASKS)):
        parts.append(f"  __subtask({t});")
        if t == 0:
            parts.append("  crc = 0xFFFF;")
        parts += [
            f"  for (i = {start}; i < {end}; i = i + 1) {{",
            "    idx = (crc ^ msg[i]) & 255;",
            "    crc = ((crc >> 8) & 16777215) ^ crctab[idx];",
            "  }",
        ]
    parts += [
        "  crc_out[0] = crc;",
        "  __taskend();",
        "}",
    ]
    return "\n".join(parts) + "\n"


def _reference(n: int):
    table = _crc_table()

    def ref(inputs: dict[str, list]) -> dict[str, list]:
        crc = 0xFFFF
        for byte in inputs["msg"]:
            idx = (crc ^ byte) & 255
            crc = ((crc >> 8) & 0xFFFFFF) ^ table[idx]
        return {"crc_out": [crc]}

    return ref


def make(scale: str = "default") -> Workload:
    """Build the crc workload at the given scale preset."""
    n = SIZES[scale]

    def gen(rng: random.Random) -> list[int]:
        return [rng.randint(0, 255) for _ in range(n)]

    return Workload(
        name="crc",
        scale=scale,
        source=_source(n),
        subtasks=SUBTASKS,
        inputs=[InputSpec("msg", gen)],
        outputs={"crc_out": 1},
        reference=_reference(n),
        params={"n": n},
    )
