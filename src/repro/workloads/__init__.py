"""C-lab hard real-time benchmark suite (paper §5.3), rewritten in MiniC.

Six kernels — ``adpcm``, ``cnt``, ``fft``, ``lms``, ``mm``, ``srt`` — with
the paper's sub-task structure (chunks peeled off the outermost loop; code
before/after the loop merged into the first/last sub-tasks) and Table 3's
sub-task counts in the ``paper`` scale preset.

Use :func:`repro.workloads.suite.get_workload` /
:func:`repro.workloads.suite.all_workloads`.
"""

from repro.workloads.base import Workload
from repro.workloads.suite import (
    EXTRA_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    all_workloads,
    get_workload,
)

__all__ = [
    "Workload",
    "WORKLOAD_NAMES",
    "EXTRA_WORKLOAD_NAMES",
    "all_workloads",
    "get_workload",
]
