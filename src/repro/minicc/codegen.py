"""MiniC code generator: AST -> RTP-32 assembly text.

Straightforward non-optimizing codegen in the style of a classic one-pass
compiler: locals live in the stack frame, expressions evaluate into a pool
of temporary registers, arguments travel in ``a0``-``a3`` / ``f12``-``f15``.
The paper compiles with ``-O3``; an optimizing backend would shrink dynamic
instruction counts but not change any of the *relative* quantities the
reproduction targets (WCET/actual ratios, complex/simple speedups).

Loop-bound and sub-task annotations pass through to the assembler
(``.loopbound`` / ``.subtask`` / ``.taskend``), which records them in the
:class:`~repro.isa.program.Program` for the WCET analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.isa import layout
from repro.minicc import c_ast as ast

_INT_TEMPS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")
_FP_TEMPS = (
    "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11",
    "f16", "f17", "f18", "f19",
)
_INT_ARGS = ("a0", "a1", "a2", "a3")
_FP_ARGS = ("f12", "f13", "f14", "f15")
# Callee-saved registers used as home locations for scalar locals (gcc -O3
# keeps loop-carried scalars in registers; without this both pipelines drown
# in stack traffic and every relative result is distorted).
_INT_SAVED = ("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
_FP_SAVED = (
    "f20", "f21", "f22", "f23", "f24", "f25",
    "f26", "f27", "f28", "f29", "f30", "f31",
)


class _RegPool:
    """Temporary-register allocator for expression evaluation."""

    def __init__(self, names: tuple[str, ...], what: str):
        self._all = names
        self._free = list(names)
        self._used: list[str] = []
        self._what = what

    def acquire(self, line: int) -> str:
        if not self._free:
            raise CompileError(
                f"expression too complex: out of {self._what} temporaries", line
            )
        reg = self._free.pop(0)
        self._used.append(reg)
        return reg

    def release(self, reg: str) -> None:
        self._used.remove(reg)
        self._free.insert(0, reg)

    @property
    def used(self) -> list[str]:
        return list(self._used)


@dataclass
class _Local:
    type: ast.Type
    offset: int | None = None  # negative, fp-relative (stack homes)
    reg: str | None = None  # callee-saved home register (register homes)


@dataclass
class _Global:
    type: ast.Type
    dims: tuple[int, ...]


class CodeGen:
    """Generates assembly for one MiniC module."""

    def __init__(self, module: ast.Module):
        self.module = module
        self.lines: list[str] = []
        self.globals: dict[str, _Global] = {}
        self.functions: dict[str, ast.Function] = {}
        self.float_consts: dict[float, str] = {}
        self._label_counter = 0
        # Per-function state:
        self.locals: dict[str, _Local] = {}
        self.current: ast.Function | None = None
        self.ipool = _RegPool(_INT_TEMPS, "integer")
        self.fpool = _RegPool(_FP_TEMPS, "float")
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []
        self._epilogue_label = ""

    # -- helpers --------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{hint}{self._label_counter}"

    def _pool(self, typ: ast.Type) -> _RegPool:
        return self.fpool if typ == "float" else self.ipool

    def _release(self, reg: str, typ: ast.Type) -> None:
        self._pool(typ).release(reg)

    def _float_const(self, value: float) -> str:
        value = float(value)
        if value not in self.float_consts:
            self.float_consts[value] = f".FC{len(self.float_consts)}"
        return self.float_consts[value]

    # -- module ---------------------------------------------------------------

    def generate(self) -> str:
        for g in self.module.globals:
            if g.name in self.globals:
                raise CompileError(f"duplicate global {g.name!r}", g.line)
            self.globals[g.name] = _Global(g.type, g.dims)
        for f in self.module.functions:
            if f.name in self.functions:
                raise CompileError(f"duplicate function {f.name!r}", f.line)
            self.functions[f.name] = f
        if "main" not in self.functions:
            raise CompileError("no main() function")
        if self.functions["main"].ret_type != "void":
            raise CompileError("main() must return void")

        self.lines.append(".text")
        for f in self.module.functions:
            self._function(f)
        self.lines.append(".data")
        for g in self.module.globals:
            self._emit_global(g)
        for value, label in self.float_consts.items():
            self.lines.append(f"{label}: .float {value!r}")
        return "\n".join(self.lines) + "\n"

    def _emit_global(self, g: ast.GlobalVar) -> None:
        total = 1
        for d in g.dims:
            total *= d
        directive = ".float" if g.type == "float" else ".word"
        if g.init is None:
            self.lines.append(f"{g.name}: .space {4 * total}")
            return
        if not g.dims:
            self.lines.append(f"{g.name}: {directive} {g.init!r}")
            return
        values = list(g.init) if isinstance(g.init, list) else [g.init]
        if len(values) > total:
            raise CompileError(
                f"too many initializers for {g.name!r}", g.line
            )
        values += [0.0 if g.type == "float" else 0] * (total - len(values))
        self.lines.append(f"{g.name}:")
        for start in range(0, total, 8):
            chunk = ", ".join(repr(v) for v in values[start:start + 8])
            self.lines.append(f"    {directive} {chunk}")

    # -- functions ---------------------------------------------------------------

    def _function(self, f: ast.Function) -> None:
        self.current = f
        self.locals = {}
        self._epilogue_label = self.new_label("ret")

        int_params = [p for p in f.params if p.type == "int"]
        fp_params = [p for p in f.params if p.type == "float"]
        if len(int_params) > 4 or len(fp_params) > 4:
            raise CompileError(
                f"{f.name}: at most 4 int and 4 float parameters", f.line
            )

        # Allocate home locations: scalar locals/params live in callee-saved
        # registers while they last, then spill to fp-relative stack slots.
        free_int = list(_INT_SAVED)
        free_fp = list(_FP_SAVED)
        offset = -12
        names = [(p.name, p.type, 0) for p in f.params]
        for decl in _collect_decls(f.body):
            if decl.name in {n for n, _, _ in names}:
                raise CompileError(f"duplicate local {decl.name!r}", decl.line)
            names.append((decl.name, decl.type, decl.line))
        for name, typ, _line in names:
            pool = free_fp if typ == "float" else free_int
            if pool:
                self.locals[name] = _Local(typ, reg=pool.pop(0))
            else:
                self.locals[name] = _Local(typ, offset=offset)
                offset -= 4
        used_int = [r for r in _INT_SAVED if r not in free_int]
        used_fp = [r for r in _FP_SAVED if r not in free_fp]
        saved = used_int + used_fp
        save_base = offset  # saved callee-saved regs live below the locals
        offset -= 4 * len(saved)
        frame = -offset - 4  # covers ra, fp, locals, saved regs
        frame = (frame + 7) & ~7

        self.emit_label(f.name)
        self.lines.append(f".frame {frame}")
        self.emit(f"subi sp, sp, {frame}")
        self.emit(f"sw ra, {frame - 4}(sp)")
        self.emit(f"sw fp, {frame - 8}(sp)")
        self.emit(f"addi fp, sp, {frame}")
        for i, reg in enumerate(saved):
            store = "fsw" if reg.startswith("f") else "sw"
            self.emit(f"{store} {reg}, {save_base - 4 * i}(fp)")
        for i, p in enumerate(int_params):
            self._store_local(self.locals[p.name], _INT_ARGS[i])
        for i, p in enumerate(fp_params):
            self._store_local(self.locals[p.name], _FP_ARGS[i])

        self._gen_stmt(f.body)

        self.emit_label(self._epilogue_label)
        if f.name == "main":
            self.emit("halt")
        else:
            for i, reg in enumerate(saved):
                load = "flw" if reg.startswith("f") else "lw"
                self.emit(f"{load} {reg}, {save_base - 4 * i}(fp)")
            self.emit(f"lw ra, {frame - 4}(sp)")
            self.emit(f"lw fp, {frame - 8}(sp)")
            self.emit(f"addi sp, sp, {frame}")
            self.emit("jr ra")
        self.current = None

    def _store_local(self, slot: _Local, reg: str) -> None:
        """Move/store ``reg`` into a local's home location."""
        if slot.reg is not None:
            mov = "fmov" if slot.type == "float" else "move"
            if slot.reg != reg:
                self.emit(f"{mov} {slot.reg}, {reg}")
        else:
            store = "fsw" if slot.type == "float" else "sw"
            self.emit(f"{store} {reg}, {slot.offset}(fp)")

    def _load_local(self, slot: _Local, reg: str) -> None:
        """Load a local's value into ``reg``."""
        if slot.reg is not None:
            mov = "fmov" if slot.type == "float" else "move"
            self.emit(f"{mov} {reg}, {slot.reg}")
        else:
            load = "flw" if slot.type == "float" else "lw"
            self.emit(f"{load} {reg}, {slot.offset}(fp)")

    # -- statements ----------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"_stmt_{type(stmt).__name__.lower()}", None)
        if method is None:  # pragma: no cover - AST is closed
            raise CompileError(f"unhandled statement {type(stmt).__name__}")
        method(stmt)

    def _stmt_block(self, stmt: ast.Block) -> None:
        for inner in stmt.stmts:
            self._gen_stmt(inner)

    def _stmt_decl(self, stmt: ast.Decl) -> None:
        if stmt.init is not None:
            reg, typ = self._gen_expr(stmt.init)
            reg, typ = self._coerce(reg, typ, stmt.type, stmt.line)
            self._store_local(self.locals[stmt.name], reg)
            self._release(reg, typ)

    def _stmt_exprstmt(self, stmt: ast.ExprStmt) -> None:
        reg, typ = self._gen_expr(stmt.expr, want_value=False)
        if reg is not None:
            self._release(reg, typ)

    def _stmt_if(self, stmt: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if stmt.els else else_label
        reg = self._gen_condition(stmt.cond)
        self.emit(f"beqz {reg}, {else_label}")
        self.ipool.release(reg)
        self._gen_stmt(stmt.then)
        if stmt.els:
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            self._gen_stmt(stmt.els)
        self.emit_label(end_label)

    def _stmt_while(self, stmt: ast.While) -> None:
        head = self.new_label("while")
        end = self.new_label("endwhile")
        self.lines.append(f".loopbound {stmt.bound}")
        self.emit_label(head)
        reg = self._gen_condition(stmt.cond)
        self.emit(f"beqz {reg}, {end}")
        self.ipool.release(reg)
        self._break_labels.append(end)
        self._continue_labels.append(head)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit(f"b {head}")
        self.emit_label(end)

    def _stmt_for(self, stmt: ast.For) -> None:
        head = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if stmt.init is not None:
            reg, typ = self._gen_expr(stmt.init, want_value=False)
            if reg is not None:
                self._release(reg, typ)
        self.lines.append(f".loopbound {stmt.bound}")
        self.emit_label(head)
        if stmt.cond is not None:
            reg = self._gen_condition(stmt.cond)
            self.emit(f"beqz {reg}, {end}")
            self.ipool.release(reg)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            reg, typ = self._gen_expr(stmt.step, want_value=False)
            if reg is not None:
                self._release(reg, typ)
        self.emit(f"b {head}")
        self.emit_label(end)

    def _stmt_return(self, stmt: ast.Return) -> None:
        assert self.current is not None
        ret = self.current.ret_type
        if stmt.value is not None:
            if ret == "void":
                raise CompileError("void function returns a value", stmt.line)
            reg, typ = self._gen_expr(stmt.value)
            reg, typ = self._coerce(reg, typ, ret, stmt.line)
            if ret == "float":
                self.emit(f"fmov f0, {reg}")
            else:
                self.emit(f"move v0, {reg}")
            self._release(reg, typ)
        elif ret != "void":
            raise CompileError("missing return value", stmt.line)
        self.emit(f"b {self._epilogue_label}")

    def _stmt_break(self, stmt: ast.Break) -> None:
        if not self._break_labels:
            raise CompileError("break outside a loop", stmt.line)
        self.emit(f"b {self._break_labels[-1]}")

    def _stmt_continue(self, stmt: ast.Continue) -> None:
        if not self._continue_labels:
            raise CompileError("continue outside a loop", stmt.line)
        self.emit(f"b {self._continue_labels[-1]}")

    def _stmt_subtask(self, stmt: ast.Subtask) -> None:
        if self.current is None or self.current.name != "main":
            raise CompileError("__subtask only allowed in main()", stmt.line)
        self.lines.append(f".subtask {stmt.index}")

    def _stmt_taskend(self, stmt: ast.TaskEnd) -> None:
        if self.current is None or self.current.name != "main":
            raise CompileError("__taskend only allowed in main()", stmt.line)
        self.lines.append(".taskend")

    def _stmt_out(self, stmt: ast.Out) -> None:
        reg, typ = self._gen_expr(stmt.value)
        reg, typ = self._coerce(reg, typ, "int", stmt.line)
        addr = self.ipool.acquire(stmt.line)
        self.emit(f"lui {addr}, {layout.MMIO_BASE >> 16}")
        self.emit(f"sw {reg}, {layout.CONSOLE_OUT & 0xFFFF}({addr})")
        self.ipool.release(addr)
        self._release(reg, typ)

    # -- expressions -----------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr) -> str:
        """Evaluate a condition to an integer register (0 = false)."""
        reg, typ = self._gen_expr(expr)
        if typ != "int":
            raise CompileError("condition must be an int expression", expr.line)
        return reg

    def _gen_expr(
        self, expr: ast.Expr, want_value: bool = True
    ) -> tuple[str | None, ast.Type]:
        """Generate code for ``expr``; returns (register, type).

        With ``want_value=False`` a void call returns (None, "void").
        """
        method = getattr(self, f"_expr_{type(expr).__name__.lower()}", None)
        if method is None:  # pragma: no cover - AST is closed
            raise CompileError(f"unhandled expression {type(expr).__name__}")
        reg, typ = method(expr)
        if want_value and reg is None:
            raise CompileError("void value used in expression", expr.line)
        return reg, typ

    def _expr_intlit(self, expr: ast.IntLit) -> tuple[str, ast.Type]:
        reg = self.ipool.acquire(expr.line)
        self.emit(f"li {reg}, {expr.value}")
        return reg, "int"

    def _expr_floatlit(self, expr: ast.FloatLit) -> tuple[str, ast.Type]:
        reg = self.fpool.acquire(expr.line)
        addr = self.ipool.acquire(expr.line)
        self.emit(f"la {addr}, {self._float_const(expr.value)}")
        self.emit(f"flw {reg}, 0({addr})")
        self.ipool.release(addr)
        return reg, "float"

    def _expr_var(self, expr: ast.Var) -> tuple[str, ast.Type]:
        if expr.name in self.locals:
            slot = self.locals[expr.name]
            reg = self._pool(slot.type).acquire(expr.line)
            self._load_local(slot, reg)
            return reg, slot.type
        if expr.name in self.globals:
            g = self.globals[expr.name]
            if g.dims:
                raise CompileError(
                    f"array {expr.name!r} used without index", expr.line
                )
            addr = self.ipool.acquire(expr.line)
            self.emit(f"la {addr}, {expr.name}")
            reg = self._pool(g.type).acquire(expr.line)
            load = "flw" if g.type == "float" else "lw"
            self.emit(f"{load} {reg}, 0({addr})")
            self.ipool.release(addr)
            return reg, g.type
        raise CompileError(f"undefined variable {expr.name!r}", expr.line)

    def _array_address(self, expr: ast.Index) -> tuple[str, ast.Type]:
        """Compute the address of an array element into an int register."""
        g = self.globals.get(expr.name)
        if g is None or not g.dims:
            raise CompileError(f"{expr.name!r} is not a global array", expr.line)
        if len(expr.indices) != len(g.dims):
            raise CompileError(
                f"{expr.name!r} needs {len(g.dims)} indices", expr.line
            )
        offset_reg, typ = self._gen_expr(expr.indices[0])
        if typ != "int":
            raise CompileError("array index must be int", expr.line)
        if len(g.dims) == 2:
            ncols = g.dims[1]
            if ncols & (ncols - 1) == 0:
                self.emit(f"sll {offset_reg}, {offset_reg}, "
                          f"{ncols.bit_length() - 1}")
            else:
                scratch = self.ipool.acquire(expr.line)
                self.emit(f"li {scratch}, {ncols}")
                self.emit(f"mul {offset_reg}, {offset_reg}, {scratch}")
                self.ipool.release(scratch)
            col_reg, col_typ = self._gen_expr(expr.indices[1])
            if col_typ != "int":
                raise CompileError("array index must be int", expr.line)
            self.emit(f"add {offset_reg}, {offset_reg}, {col_reg}")
            self.ipool.release(col_reg)
        self.emit(f"sll {offset_reg}, {offset_reg}, 2")
        base = self.ipool.acquire(expr.line)
        self.emit(f"la {base}, {expr.name}")
        self.emit(f"add {offset_reg}, {offset_reg}, {base}")
        self.ipool.release(base)
        return offset_reg, g.type

    def _expr_index(self, expr: ast.Index) -> tuple[str, ast.Type]:
        addr, typ = self._array_address(expr)
        reg = self._pool(typ).acquire(expr.line)
        load = "flw" if typ == "float" else "lw"
        self.emit(f"{load} {reg}, 0({addr})")
        self.ipool.release(addr)
        return reg, typ

    def _expr_assign(self, expr: ast.Assign) -> tuple[str, ast.Type]:
        target = expr.target
        if isinstance(target, ast.Var):
            if target.name in self.locals:
                slot = self.locals[target.name]
                reg, typ = self._gen_expr(expr.value)
                reg, typ = self._coerce(reg, typ, slot.type, expr.line)
                self._store_local(slot, reg)
                return reg, slot.type
            if target.name in self.globals:
                g = self.globals[target.name]
                if g.dims:
                    raise CompileError("cannot assign to an array", expr.line)
                reg, typ = self._gen_expr(expr.value)
                reg, typ = self._coerce(reg, typ, g.type, expr.line)
                addr = self.ipool.acquire(expr.line)
                self.emit(f"la {addr}, {target.name}")
                store = "fsw" if g.type == "float" else "sw"
                self.emit(f"{store} {reg}, 0({addr})")
                self.ipool.release(addr)
                return reg, g.type
            raise CompileError(f"undefined variable {target.name!r}", expr.line)
        assert isinstance(target, ast.Index)
        reg, typ = self._gen_expr(expr.value)
        g = self.globals.get(target.name)
        if g is None:
            raise CompileError(f"undefined array {target.name!r}", expr.line)
        reg, typ = self._coerce(reg, typ, g.type, expr.line)
        addr, _ = self._array_address(target)
        store = "fsw" if g.type == "float" else "sw"
        self.emit(f"{store} {reg}, 0({addr})")
        self.ipool.release(addr)
        return reg, typ

    def _expr_unary(self, expr: ast.Unary) -> tuple[str, ast.Type]:
        reg, typ = self._gen_expr(expr.operand)
        if expr.op == "-":
            if typ == "float":
                self.emit(f"fneg {reg}, {reg}")
            else:
                self.emit(f"neg {reg}, {reg}")
            return reg, typ
        if typ != "int":
            raise CompileError(f"operator {expr.op!r} needs int", expr.line)
        if expr.op == "!":
            self.emit(f"sltiu {reg}, {reg}, 1")
        else:  # "~"
            self.emit(f"nor {reg}, {reg}, zero")
        return reg, "int"

    def _expr_cast(self, expr: ast.Cast) -> tuple[str, ast.Type]:
        reg, typ = self._gen_expr(expr.operand)
        return self._coerce(reg, typ, expr.type, expr.line)

    def _expr_binary(self, expr: ast.Binary) -> tuple[str, ast.Type]:
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        left, ltyp = self._gen_expr(expr.left)
        right, rtyp = self._gen_expr(expr.right)
        if ltyp == "float" or rtyp == "float":
            left, ltyp = self._coerce(left, ltyp, "float", expr.line)
            right, rtyp = self._coerce(right, rtyp, "float", expr.line)
            return self._float_binary(expr, left, right)
        return self._int_binary(expr, left, right)

    def _int_binary(
        self, expr: ast.Binary, left: str, right: str
    ) -> tuple[str, ast.Type]:
        op = expr.op
        arith = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor", "<<": "sllv", ">>": "srav",
        }
        if op in arith:
            if op in ("<<", ">>"):
                # sllv/srav take the shift amount in rs: "rd, rt, rs".
                self.emit(f"{arith[op]} {left}, {left}, {right}")
            else:
                self.emit(f"{arith[op]} {left}, {left}, {right}")
            self.ipool.release(right)
            return left, "int"
        if op == "<":
            self.emit(f"slt {left}, {left}, {right}")
        elif op == ">":
            self.emit(f"slt {left}, {right}, {left}")
        elif op == "<=":
            self.emit(f"slt {left}, {right}, {left}")
            self.emit(f"xori {left}, {left}, 1")
        elif op == ">=":
            self.emit(f"slt {left}, {left}, {right}")
            self.emit(f"xori {left}, {left}, 1")
        elif op == "==":
            self.emit(f"xor {left}, {left}, {right}")
            self.emit(f"sltiu {left}, {left}, 1")
        elif op == "!=":
            self.emit(f"xor {left}, {left}, {right}")
            self.emit(f"sltu {left}, zero, {left}")
        else:  # pragma: no cover - grammar is closed
            raise CompileError(f"unknown operator {op!r}", expr.line)
        self.ipool.release(right)
        return left, "int"

    def _float_binary(
        self, expr: ast.Binary, left: str, right: str
    ) -> tuple[str, ast.Type]:
        op = expr.op
        arith = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
        if op in arith:
            self.emit(f"{arith[op]} {left}, {left}, {right}")
            self.fpool.release(right)
            return left, "float"
        result = self.ipool.acquire(expr.line)
        if op == "<":
            self.emit(f"flt {result}, {left}, {right}")
        elif op == ">":
            self.emit(f"flt {result}, {right}, {left}")
        elif op == "<=":
            self.emit(f"fle {result}, {left}, {right}")
        elif op == ">=":
            self.emit(f"fle {result}, {right}, {left}")
        elif op == "==":
            self.emit(f"feq {result}, {left}, {right}")
        elif op == "!=":
            self.emit(f"feq {result}, {left}, {right}")
            self.emit(f"xori {result}, {result}, 1")
        else:
            raise CompileError(f"operator {op!r} not defined on float", expr.line)
        self.fpool.release(left)
        self.fpool.release(right)
        return result, "int"

    def _short_circuit(self, expr: ast.Binary) -> tuple[str, ast.Type]:
        result = self.ipool.acquire(expr.line)
        done = self.new_label("sc")
        left, ltyp = self._gen_expr(expr.left)
        if ltyp != "int":
            raise CompileError(f"{expr.op!r} needs int operands", expr.line)
        self.emit(f"sltu {result}, zero, {left}")
        self.ipool.release(left)
        if expr.op == "&&":
            self.emit(f"beqz {result}, {done}")
        else:
            self.emit(f"bnez {result}, {done}")
        right, rtyp = self._gen_expr(expr.right)
        if rtyp != "int":
            raise CompileError(f"{expr.op!r} needs int operands", expr.line)
        self.emit(f"sltu {result}, zero, {right}")
        self.ipool.release(right)
        self.emit_label(done)
        return result, "int"

    def _expr_call(self, expr: ast.Call) -> tuple[str | None, ast.Type]:
        f = self.functions.get(expr.name)
        if f is None:
            raise CompileError(f"undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(f.params):
            raise CompileError(
                f"{expr.name} expects {len(f.params)} arguments", expr.line
            )
        # Save the caller's live temporaries across the call.
        saved_int = self.ipool.used
        saved_fp = self.fpool.used
        for reg in saved_int:
            self.emit("subi sp, sp, 4")
            self.emit(f"sw {reg}, 0(sp)")
        for reg in saved_fp:
            self.emit("subi sp, sp, 4")
            self.emit(f"fsw {reg}, 0(sp)")

        # Evaluate arguments, parking each on the stack (so nested calls
        # cannot clobber earlier argument registers).
        arg_types: list[ast.Type] = []
        for arg, param in zip(expr.args, f.params):
            reg, typ = self._gen_expr(arg)
            reg, typ = self._coerce(reg, typ, param.type, expr.line)
            self.emit("subi sp, sp, 4")
            self.emit(("fsw" if typ == "float" else "sw") + f" {reg}, 0(sp)")
            self._release(reg, typ)
            arg_types.append(typ)
        int_slot = fp_slot = 0
        arg_regs: list[tuple[str, ast.Type]] = []
        for typ in arg_types:
            if typ == "float":
                arg_regs.append((_FP_ARGS[fp_slot], typ))
                fp_slot += 1
            else:
                arg_regs.append((_INT_ARGS[int_slot], typ))
                int_slot += 1
        for reg, typ in reversed(arg_regs):
            self.emit(("flw" if typ == "float" else "lw") + f" {reg}, 0(sp)")
            self.emit("addi sp, sp, 4")

        self.emit(f"jal {expr.name}")

        for reg in reversed(saved_fp):
            self.emit(f"flw {reg}, 0(sp)")
            self.emit("addi sp, sp, 4")
        for reg in reversed(saved_int):
            self.emit(f"lw {reg}, 0(sp)")
            self.emit("addi sp, sp, 4")

        if f.ret_type == "void":
            return None, "void"
        result = self._pool(f.ret_type).acquire(expr.line)
        if f.ret_type == "float":
            self.emit(f"fmov {result}, f0")
        else:
            self.emit(f"move {result}, v0")
        return result, f.ret_type

    # -- type coercion ---------------------------------------------------------------

    def _coerce(
        self, reg: str | None, have: ast.Type, want: ast.Type, line: int
    ) -> tuple[str, ast.Type]:
        if reg is None:
            raise CompileError("void value used", line)
        if have == want:
            return reg, have
        if have == "int" and want == "float":
            freg = self.fpool.acquire(line)
            self.emit(f"itof {freg}, {reg}")
            self.ipool.release(reg)
            return freg, "float"
        if have == "float" and want == "int":
            ireg = self.ipool.acquire(line)
            self.emit(f"ftoi {ireg}, {reg}")
            self.fpool.release(reg)
            return ireg, "int"
        raise CompileError(f"cannot convert {have} to {want}", line)


def _collect_decls(stmt: ast.Stmt) -> list[ast.Decl]:
    """All local declarations in a function body, in source order."""
    found: list[ast.Decl] = []

    def walk(node: ast.Stmt) -> None:
        if isinstance(node, ast.Decl):
            found.append(node)
        elif isinstance(node, ast.Block):
            for inner in node.stmts:
                walk(inner)
        elif isinstance(node, ast.If):
            walk(node.then)
            if node.els:
                walk(node.els)
        elif isinstance(node, (ast.While, ast.For)):
            walk(node.body)

    walk(stmt)
    return found


def generate(module: ast.Module) -> str:
    """Generate assembly text for a parsed module."""
    return CodeGen(module).generate()
