"""Recursive-descent parser for MiniC.

Also infers ``__loopbound`` values for canonical counted ``for`` loops
(``for (i = a; i < b; i = i + c)`` with literal bounds), so benchmark
sources only need explicit annotations for data-dependent loops.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minicc import c_ast as ast
from repro.minicc.lexer import Token, tokenize

_ASSIGN_TARGETS = (ast.Var, ast.Index)

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Recursive-descent parser holding the token stream and position."""
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ----------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _check(self, kind: str, value: object = None) -> bool:
        token = self.tok
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: object = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: object = None) -> Token:
        if not self._check(kind, value):
            want = value if value is not None else kind
            raise CompileError(
                f"expected {want!r}, found {self.tok.value!r}", self.tok.line
            )
        return self._advance()

    def _peek(self, offset: int) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    # -- top level ----------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while not self._check("eof"):
            if not self._check("keyword") or self.tok.value not in (
                "int", "float", "void",
            ):
                raise CompileError(
                    f"expected declaration, found {self.tok.value!r}",
                    self.tok.line,
                )
            # Distinguish function vs global by the token after the name.
            if self._peek(2).kind == "op" and self._peek(2).value == "(":
                module.functions.append(self._function())
            else:
                module.globals.append(self._global())
        return module

    def _type(self) -> ast.Type:
        token = self._expect("keyword")
        if token.value not in ("int", "float", "void"):
            raise CompileError(f"expected a type, found {token.value!r}", token.line)
        return token.value

    def _global(self) -> ast.GlobalVar:
        line = self.tok.line
        typ = self._type()
        if typ == "void":
            raise CompileError("void is not a value type", line)
        name = self._expect("ident").value
        dims: list[int] = []
        while self._accept("op", "["):
            dims.append(self._expect("int_lit").value)
            self._expect("op", "]")
        if len(dims) > 2:
            raise CompileError("at most 2-D arrays are supported", line)
        init = None
        if self._accept("op", "="):
            if self._accept("op", "{"):
                init = [self._const_value(typ)]
                while self._accept("op", ","):
                    if self._check("op", "}"):  # trailing comma
                        break
                    init.append(self._const_value(typ))
                self._expect("op", "}")
            else:
                init = self._const_value(typ)
        self._expect("op", ";")
        return ast.GlobalVar(name, typ, tuple(dims), init, line)

    def _const_value(self, typ: ast.Type) -> object:
        negative = bool(self._accept("op", "-"))
        token = self._advance()
        if token.kind == "int_lit":
            value: object = -token.value if negative else token.value
        elif token.kind == "float_lit":
            value = -token.value if negative else token.value
        else:
            raise CompileError("expected a constant", token.line)
        if typ == "float":
            return float(value)
        if isinstance(value, float):
            raise CompileError("float constant in int initializer", token.line)
        return value

    def _function(self) -> ast.Function:
        line = self.tok.line
        ret_type = self._type()
        name = self._expect("ident").value
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._check("op", ")"):
            if self._check("keyword", "void") and self._peek(1).value == ")":
                self._advance()
            else:
                while True:
                    ptyp = self._type()
                    if ptyp == "void":
                        raise CompileError("void parameter", self.tok.line)
                    pname = self._expect("ident").value
                    params.append(ast.Param(pname, ptyp))
                    if not self._accept("op", ","):
                        break
        self._expect("op", ")")
        body = self._block()
        return ast.Function(name, ret_type, params, body, line)

    # -- statements -----------------------------------------------------------------

    def _block(self) -> ast.Block:
        line = self._expect("op", "{").line
        stmts: list[ast.Stmt] = []
        while not self._check("op", "}"):
            stmts.append(self._statement())
        self._expect("op", "}")
        return ast.Block(line=line, stmts=stmts)

    def _statement(self) -> ast.Stmt:
        token = self.tok
        if token.kind == "op" and token.value == "{":
            return self._block()
        if token.kind == "op" and token.value == ";":
            self._advance()
            return ast.Block(line=token.line)
        if token.kind == "keyword":
            if token.value in ("int", "float"):
                return self._decl()
            if token.value == "if":
                return self._if()
            if token.value == "while":
                return self._while()
            if token.value == "for":
                return self._for()
            if token.value == "return":
                self._advance()
                value = None if self._check("op", ";") else self._expression()
                self._expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.value == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=token.line)
            if token.value == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=token.line)
        if token.kind == "ident" and token.value in (
            "__subtask", "__taskend", "__out",
        ):
            return self._intrinsic()
        expr = self._expression()
        self._expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _decl(self) -> ast.Stmt:
        line = self.tok.line
        typ = self._type()
        name = self._expect("ident").value
        if self._check("op", "["):
            raise CompileError("local arrays are not supported (use globals)", line)
        init = self._expression() if self._accept("op", "=") else None
        self._expect("op", ";")
        return ast.Decl(line=line, name=name, type=typ, init=init)

    def _if(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then = self._statement()
        els = self._statement() if self._accept("keyword", "else") else None
        return ast.If(line=line, cond=cond, then=then, els=els)

    def _loopbound(self) -> int | None:
        if self._check("ident", "__loopbound"):
            self._advance()
            self._expect("op", "(")
            bound = self._expect("int_lit").value
            self._expect("op", ")")
            return bound
        return None

    def _while(self) -> ast.While:
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        bound = self._loopbound()
        body = self._statement()
        if bound is None:
            raise CompileError(
                "while loop needs __loopbound(N) for WCET analysis", line
            )
        return ast.While(line=line, cond=cond, body=body, bound=bound)

    def _for(self) -> ast.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init = None if self._check("op", ";") else self._expression()
        self._expect("op", ";")
        cond = None if self._check("op", ";") else self._expression()
        self._expect("op", ";")
        step = None if self._check("op", ")") else self._expression()
        self._expect("op", ")")
        bound = self._loopbound()
        body = self._statement()
        if bound is None:
            bound = _infer_for_bound(init, cond, step)
        if bound is None:
            raise CompileError(
                "cannot infer for-loop bound; add __loopbound(N)", line
            )
        return ast.For(
            line=line, init=init, cond=cond, step=step, body=body, bound=bound
        )

    def _intrinsic(self) -> ast.Stmt:
        token = self._advance()
        self._expect("op", "(")
        if token.value == "__subtask":
            index = self._expect("int_lit").value
            self._expect("op", ")")
            self._expect("op", ";")
            return ast.Subtask(line=token.line, index=index)
        if token.value == "__taskend":
            self._expect("op", ")")
            self._expect("op", ";")
            return ast.TaskEnd(line=token.line)
        value = self._expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.Out(line=token.line, value=value)

    # -- expressions -----------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._binary(0)
        if self._check("op", "="):
            line = self._advance().line
            if not isinstance(left, _ASSIGN_TARGETS):
                raise CompileError("invalid assignment target", line)
            value = self._assignment()
            return ast.Assign(line=line, target=left, value=value)
        return left

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.tok
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.value, 0)
            if prec == 0 or prec < min_prec:
                return left
            self._advance()
            right = self._binary(prec + 1)
            left = _fold(ast.Binary(
                line=token.line, op=token.value, left=left, right=right
            ))

    def _unary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "op" and token.value in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return _fold_unary(ast.Unary(line=token.line, op=token.value,
                                         operand=operand))
        if token.kind == "op" and token.value == "+":
            self._advance()
            return self._unary()
        # Cast: '(' type ')' unary
        if (
            token.kind == "op"
            and token.value == "("
            and self._peek(1).kind == "keyword"
            and self._peek(1).value in ("int", "float")
            and self._peek(2).kind == "op"
            and self._peek(2).value == ")"
        ):
            self._advance()
            typ = self._type()
            self._expect("op", ")")
            operand = self._unary()
            return ast.Cast(line=token.line, type=typ, operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        token = self.tok
        if token.kind == "int_lit":
            self._advance()
            return ast.IntLit(line=token.line, value=token.value)
        if token.kind == "float_lit":
            self._advance()
            return ast.FloatLit(line=token.line, value=token.value)
        if token.kind == "op" and token.value == "(":
            self._advance()
            expr = self._expression()
            self._expect("op", ")")
            return expr
        if token.kind != "ident":
            raise CompileError(f"unexpected token {token.value!r}", token.line)
        name = self._advance().value
        if self._accept("op", "("):
            args: list[ast.Expr] = []
            if not self._check("op", ")"):
                args.append(self._expression())
                while self._accept("op", ","):
                    args.append(self._expression())
            self._expect("op", ")")
            return ast.Call(line=token.line, name=name, args=args)
        if self._check("op", "["):
            indices: list[ast.Expr] = []
            while self._accept("op", "["):
                indices.append(self._expression())
                self._expect("op", "]")
            if len(indices) > 2:
                raise CompileError("at most 2-D indexing", token.line)
            return ast.Index(line=token.line, name=name, indices=indices)
        return ast.Var(line=token.line, name=name)


def _fold(node: ast.Binary) -> ast.Expr:
    """Constant-fold integer binary expressions."""
    left, right = node.left, node.right
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
        a, b = left.value, right.value
        table = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "<<": lambda: a << b, ">>": lambda: a >> b,
            "&": lambda: a & b, "|": lambda: a | b, "^": lambda: a ^ b,
        }
        if node.op in table:
            return ast.IntLit(line=node.line, value=table[node.op]())
        if node.op in ("/", "%") and b != 0:
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return ast.IntLit(
                line=node.line, value=q if node.op == "/" else a - q * b
            )
    return node


def _fold_unary(node: ast.Unary) -> ast.Expr:
    operand = node.operand
    if isinstance(operand, ast.IntLit):
        if node.op == "-":
            return ast.IntLit(line=node.line, value=-operand.value)
        if node.op == "~":
            return ast.IntLit(line=node.line, value=~operand.value)
    if isinstance(operand, ast.FloatLit) and node.op == "-":
        return ast.FloatLit(line=node.line, value=-operand.value)
    return node


def _infer_for_bound(
    init: ast.Expr | None, cond: ast.Expr | None, step: ast.Expr | None
) -> int | None:
    """Infer the trip count of ``for (i = a; i </<= b; i = i + c)``."""
    if not (
        isinstance(init, ast.Assign)
        and isinstance(init.target, ast.Var)
        and isinstance(init.value, ast.IntLit)
        and isinstance(cond, ast.Binary)
        and cond.op in ("<", "<=", ">", ">=")
        and isinstance(cond.left, ast.Var)
        and cond.left.name == init.target.name
        and isinstance(cond.right, ast.IntLit)
        and isinstance(step, ast.Assign)
        and isinstance(step.target, ast.Var)
        and step.target.name == init.target.name
        and isinstance(step.value, ast.Binary)
        and step.value.op in ("+", "-")
        and isinstance(step.value.left, ast.Var)
        and step.value.left.name == init.target.name
        and isinstance(step.value.right, ast.IntLit)
    ):
        return None
    start = init.value.value
    limit = cond.right.value
    delta = step.value.right.value
    if step.value.op == "-":
        delta = -delta
    if delta == 0:
        return None
    if cond.op == "<":
        span = limit - start
    elif cond.op == "<=":
        span = limit - start + 1
    elif cond.op == ">":
        span = start - limit
    else:  # >=
        span = start - limit + 1
    if span <= 0:
        return 0
    magnitude = abs(delta)
    return (span + magnitude - 1) // magnitude


def parse(source: str) -> ast.Module:
    """Parse MiniC source into a module AST."""
    return Parser(source).parse_module()
