"""MiniC compiler driver: source text -> assembly -> :class:`Program`."""

from __future__ import annotations

from repro.isa import layout
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.minicc.codegen import generate
from repro.minicc.inline import inline_module
from repro.minicc.parser import parse


def compile_to_asm(source: str, inline: bool = True) -> str:
    """Compile MiniC source to RTP-32 assembly text.

    ``inline=True`` (default) inlines small helper functions at statement
    call sites, matching the paper's ``gcc -O3`` compilation.
    """
    module = parse(source)
    if inline:
        module = inline_module(module)
    return generate(module)


def compile_source(
    source: str,
    text_base: int = layout.TEXT_BASE,
    data_base: int = layout.DATA_BASE,
    inline: bool = True,
) -> Program:
    """Compile MiniC source to a loadable :class:`Program`.

    Raises:
        CompileError: for language-level errors.
        AssemblerError: if generated assembly is invalid (a compiler bug).
    """
    return assemble(
        compile_to_asm(source, inline=inline),
        text_base=text_base,
        data_base=data_base,
    )
