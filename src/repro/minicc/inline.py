"""Function inlining for MiniC (the load-bearing part of ``-O3``).

The paper compiles with ``gcc -O3``, which inlines the C-lab kernels'
small helper functions (adpcm's per-sample encoder/decoder, most
notably).  Without inlining, every sample pays call/return overhead and an
indirect-jump fetch stall on the VISA pipeline — and the out-of-order core
loses its ability to overlap work across samples.  This pass restores the
comparison the paper actually ran.

A call is inlined when:

* it appears as a whole statement — ``f(x);`` or ``y = f(x);`` (that is
  how the C-lab kernels call their helpers), and
* the callee is non-recursive, and either returns ``void`` with no
  ``return`` statements, or has exactly one ``return`` as its final
  top-level statement (so control flow needs no rewriting), and
* the callee body is reasonably small.

Inlined locals/parameters are renamed with a per-site prefix to avoid
capture; the pass iterates so helpers calling helpers flatten too.
"""

from __future__ import annotations

import dataclasses

from repro.minicc import c_ast as ast

#: Maximum callee statement count considered for inlining.
MAX_BODY_STATEMENTS = 60


def inline_module(module: ast.Module, max_rounds: int = 4) -> ast.Module:
    """Inline eligible calls; returns the same module, rewritten.

    Helpers whose every call site was inlined are dropped afterwards
    (``gcc -O3`` does the same for ``static`` helpers): emitting their
    never-called out-of-line bodies would only distort the I-cache layout
    and trip the lint's unreachable-code check.
    """
    functions = {f.name: f for f in module.functions}
    for _ in range(max_rounds):
        changed = False
        for function in module.functions:
            rewriter = _Rewriter(functions, current=function.name)
            function.body = rewriter.rewrite_block(function.body)
            changed |= rewriter.changed
        if not changed:
            break
    if "main" in functions:
        live = _live_functions(functions)
        module.functions = [f for f in module.functions if f.name in live]
    return module


def _live_functions(functions: dict[str, ast.Function]) -> set[str]:
    """Names reachable from ``main`` through remaining call expressions."""
    live = {"main"}
    worklist = ["main"]
    while worklist:
        func = functions.get(worklist.pop())
        if func is None:
            continue
        for name in _called_names(func.body):
            if name not in live:
                live.add(name)
                worklist.append(name)
    return live


def _called_names(stmt: ast.Stmt) -> set[str]:
    """All function names called anywhere under ``stmt``."""
    names: set[str] = set()

    def walk_expr(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            names.add(expr.name)
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, (ast.Unary, ast.Cast)):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Assign):
            walk_expr(expr.target)
            walk_expr(expr.value)
        elif isinstance(expr, ast.Index):
            for index in expr.indices:
                walk_expr(index)

    def walk_stmt(node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for inner in node.stmts:
                walk_stmt(inner)
        elif isinstance(node, ast.Decl):
            walk_expr(node.init)
        elif isinstance(node, ast.ExprStmt):
            walk_expr(node.expr)
        elif isinstance(node, ast.If):
            walk_expr(node.cond)
            walk_stmt(node.then)
            if node.els:
                walk_stmt(node.els)
        elif isinstance(node, ast.While):
            walk_expr(node.cond)
            walk_stmt(node.body)
        elif isinstance(node, ast.For):
            walk_expr(node.init)
            walk_expr(node.cond)
            walk_expr(node.step)
            walk_stmt(node.body)
        elif isinstance(node, (ast.Return, ast.Out)):
            walk_expr(node.value)

    walk_stmt(stmt)
    return names


def _eligible(func: ast.Function) -> bool:
    stmts = func.body.stmts
    if _count_statements(func.body) > MAX_BODY_STATEMENTS:
        return False
    if _has_marker(func.body):
        # Sub-task markers are position-sensitive (each index must appear
        # exactly once, in main): inlining would duplicate them and hide
        # the marker-outside-main diagnostic.
        return False
    returns = _count_returns(func.body)
    if func.ret_type == "void":
        return returns == 0
    # Exactly one return, and it must be the final top-level statement.
    if returns != 1 or not stmts or not isinstance(stmts[-1], ast.Return):
        return False
    return True


def _count_statements(stmt: ast.Stmt) -> int:
    total = 1
    if isinstance(stmt, ast.Block):
        total = sum(_count_statements(s) for s in stmt.stmts)
    elif isinstance(stmt, ast.If):
        total += _count_statements(stmt.then)
        if stmt.els:
            total += _count_statements(stmt.els)
    elif isinstance(stmt, (ast.While, ast.For)):
        total += _count_statements(stmt.body)
    return total


def _has_marker(stmt: ast.Stmt) -> bool:
    """True when ``stmt`` contains a ``__subtask``/``__taskend`` marker."""
    if isinstance(stmt, (ast.Subtask, ast.TaskEnd)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_has_marker(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        if _has_marker(stmt.then):
            return True
        return stmt.els is not None and _has_marker(stmt.els)
    if isinstance(stmt, (ast.While, ast.For)):
        return _has_marker(stmt.body)
    return False


def _count_returns(stmt: ast.Stmt) -> int:
    if isinstance(stmt, ast.Return):
        return 1
    if isinstance(stmt, ast.Block):
        return sum(_count_returns(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        total = _count_returns(stmt.then)
        if stmt.els:
            total += _count_returns(stmt.els)
        return total
    if isinstance(stmt, (ast.While, ast.For)):
        return _count_returns(stmt.body)
    return 0


class _Rewriter:
    def __init__(self, functions: dict[str, ast.Function], current: str):
        self.functions = functions
        self.current = current
        self.changed = False
        self._site = 0

    # -- statement rewriting ---------------------------------------------------

    def rewrite_block(self, block: ast.Block) -> ast.Block:
        out: list[ast.Stmt] = []
        for stmt in block.stmts:
            out.extend(self.rewrite_stmt(stmt))
        block.stmts = out
        return block

    def rewrite_stmt(self, stmt: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(stmt, ast.Block):
            return [self.rewrite_block(stmt)]
        if isinstance(stmt, ast.If):
            stmt.then = _as_block(self.rewrite_stmt(stmt.then))
            if stmt.els is not None:
                stmt.els = _as_block(self.rewrite_stmt(stmt.els))
            return [stmt]
        if isinstance(stmt, (ast.While, ast.For)):
            stmt.body = _as_block(self.rewrite_stmt(stmt.body))
            return [stmt]
        if isinstance(stmt, ast.Decl) and isinstance(stmt.init, ast.Call):
            call = stmt.init
            if self._inlinable(call):
                self.changed = True
                stmt.init = None
                target = ast.Var(line=stmt.line, name=stmt.name)
                return [stmt] + self._expand(
                    target, call, self.functions[call.name]
                )
        call_shape = self._call_statement(stmt)
        if call_shape is not None:
            target, call = call_shape
            if self._inlinable(call):
                self.changed = True
                return self._expand(target, call, self.functions[call.name])
        hoisted = self._hoist(stmt)
        if hoisted is not None:
            self.changed = True
            # Re-run on the rewritten statements (more calls may remain).
            out: list[ast.Stmt] = []
            for piece in hoisted:
                out.extend(self.rewrite_stmt(piece))
            return out
        return [stmt]

    def _inlinable(self, call: ast.Call) -> bool:
        callee = self.functions.get(call.name)
        return (
            callee is not None
            and callee.name != self.current
            and len(call.args) == len(callee.params)
            and _eligible(callee)
            and all(not _has_call(arg) for arg in call.args)
        )

    def _hoist(self, stmt: ast.Stmt) -> list[ast.Stmt] | None:
        """Hoist an expression-embedded call into its own statement.

        ``acc = acc + f(i);`` becomes ``int tmp = f(i); acc = acc + tmp;``
        — but only when everything evaluated *before* the call (in this
        compiler's left-to-right order) is side-effect free, and never out
        of a short-circuit right-hand side, so semantics are preserved
        exactly.
        """
        if isinstance(stmt, ast.ExprStmt):
            container, attr = stmt, "expr"
        elif isinstance(stmt, ast.Decl) and stmt.init is not None:
            container, attr = stmt, "init"
        elif isinstance(stmt, ast.Out):
            container, attr = stmt, "value"
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            container, attr = stmt, "value"
        else:
            return None
        expr = getattr(container, attr)
        if isinstance(expr, ast.Call) or (
            isinstance(expr, ast.Assign) and isinstance(expr.value, ast.Call)
        ):
            return None  # whole-statement shape; handled directly
        found = _first_hoistable_call(expr, self._inlinable)
        if found is None:
            return None
        call, replace = found
        callee = self.functions[call.name]
        self._site += 1
        temp = f"__hoist{self._site}"
        replace(ast.Var(line=call.line, name=temp))
        return [
            ast.Decl(line=call.line, name=temp, type=callee.ret_type,
                     init=call),
            stmt,
        ]

    def _call_statement(self, stmt):
        """Match ``f(...);`` or ``x = f(...);`` (x a scalar Var)."""
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                return None, stmt.expr
            if (
                isinstance(stmt.expr, ast.Assign)
                and isinstance(stmt.expr.value, ast.Call)
            ):
                return stmt.expr.target, stmt.expr.value
        return None

    # -- expansion ---------------------------------------------------------------

    def _expand(self, target, call: ast.Call, callee: ast.Function):
        self._site += 1
        prefix = f"__inl{self._site}_{callee.name}_"
        rename = {}
        out: list[ast.Stmt] = []
        for param, arg in zip(callee.params, call.args):
            fresh = prefix + param.name
            rename[param.name] = fresh
            out.append(
                ast.Decl(line=call.line, name=fresh, type=param.type, init=arg)
            )
        for decl in _local_decls(callee.body):
            rename[decl.name] = prefix + decl.name

        body = [_rename_stmt(s, rename, prefix) for s in callee.body.stmts]
        if callee.ret_type != "void":
            final = body.pop()
            assert isinstance(final, ast.Return) and final.value is not None
            out.extend(body)
            if target is not None:
                out.append(
                    ast.ExprStmt(
                        line=call.line,
                        expr=ast.Assign(
                            line=call.line, target=target, value=final.value
                        ),
                    )
                )
        else:
            out.extend(body)
            if target is not None:  # pragma: no cover - type checker catches
                raise AssertionError("void call cannot have a target")
        return out


def _first_hoistable_call(expr: ast.Expr, inlinable):
    """First call in evaluation order with a pure prefix, or None.

    Returns ``(call, replace_fn)`` where ``replace_fn(new_expr)`` splices a
    replacement into the call's position.  The search aborts (None) when a
    side effect (assignment, non-inlinable call) would be reordered, or
    when the call sits in a short-circuit right-hand side.
    """
    # Each frame: (node, setter) visited in this compiler's eval order.
    result = {}

    def walk(node, setter) -> str:
        """Returns 'pure', 'stop', or 'found' (result filled)."""
        if isinstance(node, (ast.IntLit, ast.FloatLit, ast.Var)):
            return "pure"
        if isinstance(node, ast.Index):
            for i, idx in enumerate(node.indices):
                status = walk(idx, _list_setter(node.indices, i))
                if status != "pure":
                    return status
            return "pure"
        if isinstance(node, (ast.Unary, ast.Cast)):
            return walk(node.operand, _attr_setter(node, "operand"))
        if isinstance(node, ast.Binary):
            status = walk(node.left, _attr_setter(node, "left"))
            if status != "pure":
                return status
            if node.op in ("&&", "||"):
                # The right side may not execute; never hoist out of it.
                return "stop" if _has_call(node.right) else "pure"
            return walk(node.right, _attr_setter(node, "right"))
        if isinstance(node, ast.Assign):
            status = walk(node.value, _attr_setter(node, "value"))
            if status != "pure":
                return status
            if isinstance(node.target, ast.Index):
                for i, idx in enumerate(node.target.indices):
                    status = walk(idx, _list_setter(node.target.indices, i))
                    if status != "pure":
                        return status
            return "stop"  # the write itself is a side effect
        if isinstance(node, ast.Call):
            for i, arg in enumerate(node.args):
                status = walk(arg, _list_setter(node.args, i))
                if status != "pure":
                    return status
            if inlinable(node):
                result["call"] = node
                result["replace"] = setter
                return "found"
            return "stop"  # a call we cannot inline is a side effect
        return "stop"

    status = walk(expr, None)
    if status == "found":
        return result["call"], result["replace"]
    return None


def _attr_setter(node, attr):
    def set_(new):
        setattr(node, attr, new)

    return set_


def _list_setter(lst, index):
    def set_(new):
        lst[index] = new

    return set_


def _as_block(stmts: list[ast.Stmt]) -> ast.Stmt:
    if len(stmts) == 1:
        return stmts[0]
    return ast.Block(stmts=stmts)


def _has_call(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Call):
        return True
    if isinstance(expr, ast.Binary):
        return _has_call(expr.left) or _has_call(expr.right)
    if isinstance(expr, (ast.Unary, ast.Cast)):
        return _has_call(expr.operand)
    if isinstance(expr, ast.Assign):
        return _has_call(expr.value) or _has_call(expr.target)
    if isinstance(expr, ast.Index):
        return any(_has_call(i) for i in expr.indices)
    return False


def _local_decls(stmt: ast.Stmt) -> list[ast.Decl]:
    found: list[ast.Decl] = []
    if isinstance(stmt, ast.Decl):
        found.append(stmt)
    elif isinstance(stmt, ast.Block):
        for inner in stmt.stmts:
            found.extend(_local_decls(inner))
    elif isinstance(stmt, ast.If):
        found.extend(_local_decls(stmt.then))
        if stmt.els:
            found.extend(_local_decls(stmt.els))
    elif isinstance(stmt, (ast.While, ast.For)):
        found.extend(_local_decls(stmt.body))
    return found


# -- capture-free copying --------------------------------------------------------

def _rename_expr(expr: ast.Expr, rename: dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Var):
        return ast.Var(line=expr.line, name=rename.get(expr.name, expr.name))
    if isinstance(expr, ast.Index):
        return ast.Index(
            line=expr.line,
            name=expr.name,  # arrays are global: never renamed
            indices=[_rename_expr(i, rename) for i in expr.indices],
        )
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            line=expr.line, op=expr.op,
            left=_rename_expr(expr.left, rename),
            right=_rename_expr(expr.right, rename),
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(
            line=expr.line, op=expr.op,
            operand=_rename_expr(expr.operand, rename),
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(
            line=expr.line, type=expr.type,
            operand=_rename_expr(expr.operand, rename),
        )
    if isinstance(expr, ast.Assign):
        return ast.Assign(
            line=expr.line,
            target=_rename_expr(expr.target, rename),
            value=_rename_expr(expr.value, rename),
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            line=expr.line, name=expr.name,
            args=[_rename_expr(a, rename) for a in expr.args],
        )
    return dataclasses.replace(expr)


def _rename_stmt(stmt: ast.Stmt, rename: dict[str, str], prefix: str) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        return ast.Block(
            line=stmt.line,
            stmts=[_rename_stmt(s, rename, prefix) for s in stmt.stmts],
        )
    if isinstance(stmt, ast.Decl):
        init = _rename_expr(stmt.init, rename) if stmt.init else None
        return ast.Decl(
            line=stmt.line, name=rename[stmt.name], type=stmt.type, init=init
        )
    if isinstance(stmt, ast.ExprStmt):
        return ast.ExprStmt(line=stmt.line, expr=_rename_expr(stmt.expr, rename))
    if isinstance(stmt, ast.If):
        return ast.If(
            line=stmt.line,
            cond=_rename_expr(stmt.cond, rename),
            then=_rename_stmt(stmt.then, rename, prefix),
            els=_rename_stmt(stmt.els, rename, prefix) if stmt.els else None,
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            line=stmt.line,
            cond=_rename_expr(stmt.cond, rename),
            body=_rename_stmt(stmt.body, rename, prefix),
            bound=stmt.bound,
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            line=stmt.line,
            init=_rename_expr(stmt.init, rename) if stmt.init else None,
            cond=_rename_expr(stmt.cond, rename) if stmt.cond else None,
            step=_rename_expr(stmt.step, rename) if stmt.step else None,
            body=_rename_stmt(stmt.body, rename, prefix),
            bound=stmt.bound,
        )
    if isinstance(stmt, ast.Return):
        return ast.Return(
            line=stmt.line,
            value=_rename_expr(stmt.value, rename) if stmt.value else None,
        )
    if isinstance(stmt, ast.Out):
        return ast.Out(line=stmt.line, value=_rename_expr(stmt.value, rename))
    return stmt  # Break/Continue/Subtask/TaskEnd carry no names
