"""Tokenizer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = {
    "int", "float", "void", "if", "else", "while", "for",
    "return", "break", "continue",
}

INTRINSICS = {"__subtask", "__taskend", "__loopbound", "__out"}

# Multi-character operators first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    kind: "int_lit", "float_lit", "ident", "keyword", "op", or "eof".
    """

    kind: str
    value: object
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source.

    Raises:
        CompileError: on unrecognized characters or malformed literals.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            i, token = _lex_number(source, i, line)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens


def _lex_number(source: str, i: int, line: int) -> tuple[int, Token]:
    n = len(source)
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and source[j] in "0123456789abcdefABCDEF":
            j += 1
        if j == i + 2:
            raise CompileError("malformed hex literal", line)
        return j, Token("int_lit", int(source[i:j], 16), line)
    j = i
    while j < n and source[j].isdigit():
        j += 1
    is_float = False
    if j < n and source[j] == ".":
        is_float = True
        j += 1
        while j < n and source[j].isdigit():
            j += 1
    if j < n and source[j] in "eE":
        k = j + 1
        if k < n and source[k] in "+-":
            k += 1
        if k < n and source[k].isdigit():
            is_float = True
            j = k
            while j < n and source[j].isdigit():
                j += 1
    text = source[i:j]
    if is_float:
        return j, Token("float_lit", float(text), line)
    return j, Token("int_lit", int(text), line)
