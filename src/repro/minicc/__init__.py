"""MiniC: a small C dialect compiled to RTP-32 assembly.

The paper compiles the C-lab benchmarks with the gcc PISA cross-compiler.
We substitute MiniC — enough of C to express hard real-time kernels the way
the C-lab suite writes them (the suite deliberately avoids irregular
features that foil static timing analysis):

* ``int`` / ``float`` scalars and global 1-D/2-D arrays (with initializers),
* functions with up to four ``int`` and four ``float`` parameters,
* ``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``,
* full expression grammar with short-circuit ``&&``/``||`` and casts,
* WCET annotations: ``__loopbound(N)`` after a loop header (auto-inferred
  for constant-trip ``for`` loops),
* VISA intrinsics: ``__subtask(k)``, ``__taskend()``, ``__out(expr)``.

Entry point: :func:`repro.minicc.driver.compile_source`.
"""

from repro.minicc.driver import compile_source, compile_to_asm

__all__ = ["compile_source", "compile_to_asm"]
