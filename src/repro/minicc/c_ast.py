"""Abstract syntax tree for MiniC.

All nodes are plain dataclasses; ``line`` fields feed error messages.
Types are the strings ``"int"``, ``"float"``, ``"void"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Type = str  # "int" | "float" | "void"


# -- expressions ---------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Array element reference ``name[i]`` or ``name[i][j]``."""

    name: str = ""
    indices: list[Expr] = field(default_factory=list)


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    """Assignment ``target = value`` (target is Var or Index)."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Cast(Expr):
    type: Type = "int"
    operand: Expr = None  # type: ignore[assignment]


# -- statements ----------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Decl(Stmt):
    """Local variable declaration with optional initializer."""

    name: str = ""
    type: Type = "int"
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    els: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    bound: int | None = None  # __loopbound(N)


@dataclass
class For(Stmt):
    init: Expr | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]
    bound: int | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Subtask(Stmt):
    """``__subtask(k)`` — VISA sub-task boundary marker."""

    index: int = 0


@dataclass
class TaskEnd(Stmt):
    """``__taskend()`` — record the final sub-task AET, disarm watchdog."""


@dataclass
class Out(Stmt):
    """``__out(expr)`` — write an int to the debug console port."""

    value: Expr = None  # type: ignore[assignment]


# -- top level -----------------------------------------------------------------

@dataclass
class GlobalVar:
    name: str
    type: Type
    dims: tuple[int, ...]  # () scalar, (n,) 1-D, (n, m) 2-D
    init: list[object] | object | None
    line: int


@dataclass
class Param:
    name: str
    type: Type


@dataclass
class Function:
    name: str
    ret_type: Type
    params: list[Param]
    body: Block
    line: int


@dataclass
class Module:
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
