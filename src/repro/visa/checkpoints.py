"""Sub-task checkpoints and watchdog increments (paper §2.1–2.2, EQ 1).

For sub-task *i* (0-based here; the paper is 1-based):

    checkpoint_i = deadline - ovhd - sum_{k=i}^{s-1} WCET_{k, f_rec}

i.e. the latest time at which sub-task *i* may still be unfinished while
leaving room to (1) switch to simple mode and the recovery frequency,
(2) re-run all of sub-task *i* from scratch (worst-case analysis covers
the sub-task as a whole, §2.1), and (3) run the remaining sub-tasks at
their recovery-frequency WCETs.

The watchdog counter enforces checkpoints incrementally (§2.2): sub-task
0's prologue sets it to ``floor(checkpoint_0 * f)``; each later sub-task's
prologue adds ``floor((checkpoint_i - checkpoint_{i-1}) * f)``.  In the
DVS application the counting frequency is the *speculative* frequency
(§4.2), while the checkpoints themselves use the recovery frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InfeasibleError
from repro.wcet.analyzer import TaskWCET


@dataclass
class CheckpointPlan:
    """Checkpoints (seconds from task start) and watchdog increments.

    Attributes:
        deadline: Task deadline, seconds.
        ovhd: Mode/frequency switch overhead, seconds.
        checkpoints: Per-sub-task latest-unfinished times, seconds.
        increments: Per-sub-task watchdog increments, in cycles at the
            counting frequency (the values the runtime writes into the
            program's ``__visa_incr`` array).
        count_freq_hz: The frequency the watchdog counts at.
    """

    deadline: float
    ovhd: float
    checkpoints: list[float]
    increments: list[int]
    count_freq_hz: float

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able plan (floats round-trip exactly through JSON)."""
        return {
            "deadline": self.deadline,
            "ovhd": self.ovhd,
            "checkpoints": list(self.checkpoints),
            "increments": list(self.increments),
            "count_freq_hz": self.count_freq_hz,
        }

    @classmethod
    def from_state(cls, payload: dict) -> "CheckpointPlan":
        return cls(
            deadline=float(payload["deadline"]),
            ovhd=float(payload["ovhd"]),
            checkpoints=[float(c) for c in payload["checkpoints"]],
            increments=[int(i) for i in payload["increments"]],
            count_freq_hz=float(payload["count_freq_hz"]),
        )


def checkpoint_times(
    deadline: float, ovhd: float, wcet_rec: TaskWCET
) -> list[float]:
    """EQ 1 checkpoints for every sub-task.

    Raises:
        InfeasibleError: if any checkpoint is non-positive (the deadline
            cannot be guaranteed even with immediate recovery).
    """
    count = len(wcet_rec.subtasks)
    checkpoints = []
    for i in range(count):
        checkpoint = deadline - ovhd - wcet_rec.tail_seconds(i)
        if checkpoint <= 0:
            raise InfeasibleError(
                f"checkpoint {i} is {checkpoint * 1e6:.2f} us: deadline "
                f"{deadline * 1e6:.2f} us cannot be guaranteed at "
                f"{wcet_rec.freq_hz / 1e6:.0f} MHz recovery"
            )
        checkpoints.append(checkpoint)
    return checkpoints


def watchdog_increments(checkpoints: list[float], count_freq_hz: float) -> list[int]:
    """Per-sub-task watchdog increments in cycles (paper §2.2)."""
    increments = [math.floor(checkpoints[0] * count_freq_hz)]
    for prev, cur in zip(checkpoints, checkpoints[1:]):
        increments.append(math.floor((cur - prev) * count_freq_hz))
    return increments


def build_plan(
    deadline: float,
    ovhd: float,
    wcet_rec: TaskWCET,
    count_freq_hz: float,
) -> CheckpointPlan:
    """Compute the full checkpoint plan for one task configuration."""
    checkpoints = checkpoint_times(deadline, ovhd, wcet_rec)
    return CheckpointPlan(
        deadline=deadline,
        ovhd=ovhd,
        checkpoints=checkpoints,
        increments=watchdog_increments(checkpoints, count_freq_hz),
        count_freq_hz=count_freq_hz,
    )
