"""Sub-task checkpoints and watchdog increments (paper §2.1–2.2, EQ 1).

For sub-task *i* (0-based here; the paper is 1-based):

    checkpoint_i = deadline - ovhd - sum_{k=i}^{s-1} WCET_{k, f_rec}

i.e. the latest time at which sub-task *i* may still be unfinished while
leaving room to (1) switch to simple mode and the recovery frequency,
(2) re-run all of sub-task *i* from scratch (worst-case analysis covers
the sub-task as a whole, §2.1), and (3) run the remaining sub-tasks at
their recovery-frequency WCETs.

The watchdog counter enforces checkpoints incrementally (§2.2): sub-task
0's prologue sets it to ``floor(checkpoint_0 * f)``; each later sub-task's
prologue adds ``floor((checkpoint_i - checkpoint_{i-1}) * f)``.  In the
DVS application the counting frequency is the *speculative* frequency
(§4.2), while the checkpoints themselves use the recovery frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InfeasibleError
from repro.wcet.analyzer import TaskWCET


@dataclass
class CheckpointPlan:
    """Checkpoints (seconds from task start) and watchdog increments.

    Attributes:
        deadline: Task deadline, seconds.
        ovhd: Mode/frequency switch overhead, seconds.
        checkpoints: Per-sub-task latest-unfinished times, seconds.
        increments: Per-sub-task watchdog increments, in cycles at the
            counting frequency (the values the runtime writes into the
            program's ``__visa_incr`` array).
        count_freq_hz: The frequency the watchdog counts at.
    """

    deadline: float
    ovhd: float
    checkpoints: list[float]
    increments: list[int]
    count_freq_hz: float

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able plan (floats round-trip exactly through JSON)."""
        return {
            "deadline": self.deadline,
            "ovhd": self.ovhd,
            "checkpoints": list(self.checkpoints),
            "increments": list(self.increments),
            "count_freq_hz": self.count_freq_hz,
        }

    @classmethod
    def from_state(cls, payload: dict) -> "CheckpointPlan":
        return cls(
            deadline=float(payload["deadline"]),
            ovhd=float(payload["ovhd"]),
            checkpoints=[float(c) for c in payload["checkpoints"]],
            increments=[int(i) for i in payload["increments"]],
            count_freq_hz=float(payload["count_freq_hz"]),
        )


def checkpoint_times(
    deadline: float, ovhd: float, wcet_rec: TaskWCET
) -> list[float]:
    """EQ 1 checkpoints for every sub-task.

    Raises:
        InfeasibleError: if any checkpoint is non-positive (the deadline
            cannot be guaranteed even with immediate recovery).
    """
    count = len(wcet_rec.subtasks)
    checkpoints = []
    for i in range(count):
        checkpoint = deadline - ovhd - wcet_rec.tail_seconds(i)
        if checkpoint <= 0:
            raise InfeasibleError(
                f"checkpoint {i} is {checkpoint * 1e6:.2f} us: deadline "
                f"{deadline * 1e6:.2f} us cannot be guaranteed at "
                f"{wcet_rec.freq_hz / 1e6:.0f} MHz recovery"
            )
        checkpoints.append(checkpoint)
    return checkpoints


def watchdog_increments(checkpoints: list[float], count_freq_hz: float) -> list[int]:
    """Per-sub-task watchdog increments in cycles (paper §2.2)."""
    increments = [math.floor(checkpoints[0] * count_freq_hz)]
    for prev, cur in zip(checkpoints, checkpoints[1:]):
        increments.append(math.floor((cur - prev) * count_freq_hz))
    return increments


def check_plan(plan: CheckpointPlan, wcet_rec: TaskWCET) -> list[str]:
    """Audit a checkpoint plan against EQ 1 and the watchdog protocol.

    Verifies that the plan has one checkpoint per sub-task, that interim
    deadlines are positive and strictly increasing, that each equals
    ``deadline - ovhd - tail`` for the given recovery-frequency WCETs, and
    that the watchdog increments are the floor-quantized checkpoint deltas
    and give the counter at least one cycle per sub-task.

    Returns a list of human-readable problems (empty when sound).  Used by
    ``repro lint`` and the defect-corpus tests; it never raises.
    """
    problems: list[str] = []
    count = len(wcet_rec.subtasks)
    cps = plan.checkpoints
    if len(cps) != count:
        problems.append(
            f"plan has {len(cps)} checkpoints for {count} sub-tasks"
        )
        return problems
    if len(plan.increments) != count:
        problems.append(
            f"plan has {len(plan.increments)} increments for {count} sub-tasks"
        )
        return problems
    for i, cp in enumerate(cps):
        if cp <= 0:
            problems.append(f"checkpoint {i} is not positive ({cp:.9g} s)")
        expected = plan.deadline - plan.ovhd - wcet_rec.tail_seconds(i)
        if not math.isclose(cp, expected, rel_tol=1e-9, abs_tol=1e-12):
            problems.append(
                f"checkpoint {i} is {cp:.9g} s, EQ 1 gives {expected:.9g} s"
            )
    for prev_i, (prev, cur) in enumerate(zip(cps, cps[1:])):
        if cur <= prev:
            problems.append(
                f"checkpoints not strictly increasing: "
                f"checkpoint {prev_i + 1} ({cur:.9g} s) <= "
                f"checkpoint {prev_i} ({prev:.9g} s)"
            )
    expected_incs = watchdog_increments(cps, plan.count_freq_hz)
    for i, (got, want) in enumerate(zip(plan.increments, expected_incs)):
        if got != want:
            problems.append(
                f"watchdog increment {i} is {got} cycles, expected {want}"
            )
        if got < 1:
            problems.append(
                f"watchdog increment {i} ({got} cycles) gives the counter "
                "no budget"
            )
    return problems


def build_plan(
    deadline: float,
    ovhd: float,
    wcet_rec: TaskWCET,
    count_freq_hz: float,
) -> CheckpointPlan:
    """Compute the full checkpoint plan for one task configuration."""
    checkpoints = checkpoint_times(deadline, ovhd, wcet_rec)
    return CheckpointPlan(
        deadline=deadline,
        ovhd=ovhd,
        checkpoints=checkpoints,
        increments=watchdog_increments(checkpoints, count_freq_hz),
        count_freq_hz=count_freq_hz,
    )
