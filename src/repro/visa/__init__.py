"""The VISA framework: safe real-time execution on an unsafe pipeline.

This package implements the paper's primary contribution:

* :mod:`repro.visa.spec` — the virtual simple architecture specification
  (Table 1) tying together the analyzer and both cores;
* :mod:`repro.visa.dvs` — the Xscale-derived 37-point frequency/voltage
  table (§5.2);
* :mod:`repro.visa.checkpoints` — EQ 1 sub-task checkpoints and watchdog
  increments (§2.1–2.2);
* :mod:`repro.visa.pet` — predicted-execution-time selection from AET
  histories: last-N and histogram policies (§4.3);
* :mod:`repro.visa.speculation` — the frequency-speculation solvers:
  EQ 2 (conventional, for the explicitly-safe processor) and EQ 4 (the
  VISA adaptation) (§4.1–4.2);
* :mod:`repro.visa.runtime` — the run-time system: periodic task
  execution, watchdog-driven recovery into simple mode, DVS re-evaluation
  every tenth task, and per-phase records for the power model (§4–5).

Extensions beyond the paper's evaluation:

* :mod:`repro.visa.smt` — the SMT application (§1.1/§8 future work);
* :mod:`repro.visa.concurrency` — conventional concurrency: background
  work in each period's slack (§1.1);
* :mod:`repro.visa.binary` — timed binaries: parameterized WCET appended
  to the program (§1.2).
"""

from repro.visa.checkpoints import CheckpointPlan, build_plan
from repro.visa.dvs import DVSTable, Setting
from repro.visa.pet import HistogramPET, LastNPET
from repro.visa.runtime import RuntimeConfig, TaskRun, VISARuntime
from repro.visa.spec import VISASpec
from repro.visa.speculation import (
    FrequencyPair,
    lowest_safe_frequency,
    solve_eq2,
    solve_eq4,
)

__all__ = [
    "CheckpointPlan",
    "build_plan",
    "DVSTable",
    "Setting",
    "HistogramPET",
    "LastNPET",
    "RuntimeConfig",
    "TaskRun",
    "VISARuntime",
    "VISASpec",
    "FrequencyPair",
    "lowest_safe_frequency",
    "solve_eq2",
    "solve_eq4",
]
