"""The VISA run-time system (paper §2, §4, §5.1).

Two runtimes execute a periodic hard real-time task for N consecutive
instances (the paper uses 200):

* :class:`VISARuntime` — the complex processor under the VISA framework:
  run speculatively in complex mode at ``f_spec`` with the watchdog armed;
  on a missed checkpoint, drain, switch to the recovery frequency *and*
  simple mode, and finish safely.  PETs are re-evaluated every tenth task
  from the AET histories the sub-task snippets record, and EQ 4 yields new
  frequencies, checkpoints, and watchdog increments.
* :class:`SimpleFixedRuntime` — the explicitly-safe processor: either a
  fixed WCET-safe frequency, or conventional frequency speculation (EQ 2)
  when that lowers the frequency (§6.2), with misprediction detection at
  sub-task completion boundaries.

Both produce per-phase records (mode, frequency, voltage, cycles, event
counters) that the power model converts to energy; both *hard-fail* with
:class:`~repro.errors.DeadlineMissError` if a deadline is ever missed —
the entire point of the framework is that this never happens, and the test
suite leans on it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineMissError,
    InfeasibleError,
    ReproError,
    SnapshotError,
)
from repro.isa import layout
from repro.memory.machine import Machine
from repro.pipelines.inorder import InOrderCore
from repro.pipelines.ooo.core import ComplexCore
from repro.pipelines.state import CoreState
from repro.visa.checkpoints import CheckpointPlan, build_plan
from repro.visa.dvs import DVSTable, Setting
from repro.visa.pet import HistogramPET, LastNPET
from repro.visa.spec import VISASpec
from repro.visa.speculation import (
    FrequencyPair,
    lowest_safe_frequency,
    solve_eq2,
    solve_eq4,
)
from repro.snapshot.state import FORMAT_VERSION
from repro.wcet.dcache_pad import calibrate_dcache_bounds
from repro.workloads.base import Workload

#: Task instances actually simulated per runtime kind since process start
#: (or the caller's last ``SIM_COUNTS.clear()``).  Benchmarks and tests use
#: this to verify that warm-up prefix forking really skips simulation.
SIM_COUNTS = Counter()


@dataclass
class RuntimeConfig:
    """Knobs of the run-time system.

    The defaults mirror the paper where it gives values (re-evaluation
    every 10th task, last-10 PET window) and use scaled-down values where
    it does not (switch overhead, instance count) — see DESIGN.md §6.
    """

    deadline: float
    period: float | None = None  # defaults to the deadline
    instances: int = 40
    ovhd: float = 2e-6  # frequency/voltage + mode switch overhead, seconds
    reeval_period: int = 10
    pet_window: int = 10
    dvs_software_cycles: int = 2000  # charged per re-evaluation
    verify_outputs: bool = True
    #: Headroom added to PETs before solving EQ 2/EQ 4.  The sub-task
    #: snippets arm the watchdog a few instructions after resetting the
    #: cycle counter, so a PET with zero slack can fire the watchdog even
    #: when the sub-task hits its prediction exactly.  Missing a checkpoint
    #: is always *safe* (recovery guarantees the deadline) but costs power,
    #: so a little margin pays for itself.
    pet_margin: float = 0.02
    pet_slack_cycles: int = 32
    #: PET selection policy (§4.3): "lastn" (the paper's experiments) or
    #: "histogram" (probabilistic misprediction-rate targeting).
    pet_policy: str = "lastn"
    histogram_rate: float = 0.0
    #: §4.3: AETs of a mispredicted task's simple-mode tail are scaled
    #: down by the assumed complex/simple speed ratio before entering the
    #: history, so the PET feedback loop keeps adapting after recoveries.
    aet_scale_ratio: float = 4.0
    #: Re-solve EQ 4 immediately after a recovery instead of waiting for
    #: the periodic tenth-task re-evaluation.  The paper's tasks are large
    #: enough that one spec phase re-trains the dynamic predictors, so its
    #: strictly periodic schedule never mattered; at our scaled task sizes
    #: a fired instance would otherwise echo-fire until the next periodic
    #: re-evaluation (DESIGN.md §5b).
    reeval_after_recovery: bool = True

    def __post_init__(self) -> None:
        if self.period is None:
            self.period = self.deadline
        if self.period < self.deadline:
            raise ValueError("period must be >= deadline")


@dataclass
class Phase:
    """One homogeneous execution segment for power accounting."""

    kind: str  # "spec" | "recovery" | "idle" | "switch" | "dvs_sw"
    mode: str  # "complex" | "simple_mode" | "simple_fixed" | "idle"
    freq_hz: float
    volts: float
    cycles: int
    seconds: float
    counters: Counter = field(default_factory=Counter)


@dataclass
class TaskRun:
    """Outcome of one task instance."""

    index: int
    phases: list[Phase]
    mispredicted: bool
    completion_seconds: float
    deadline: float
    f_spec: Setting
    f_rec: Setting

    @property
    def deadline_met(self) -> bool:
        return self.completion_seconds <= self.deadline + 1e-12


class _RuntimeBase:
    """Shared scaffolding: program setup, AET plumbing, accounting.

    Subclasses define ``kind`` (snapshot/statistics identity) and
    ``self.core`` (their pipeline) before any shared method runs.
    """

    kind = "base"

    def __init__(
        self,
        workload: Workload,
        config: RuntimeConfig,
        spec: VISASpec | None = None,
        table: DVSTable | None = None,
        dcache_bounds: list[int] | None = None,
    ):
        self.workload = workload
        self.config = config
        self.spec = spec or VISASpec()
        self.table = table or DVSTable.xscale()
        self.program = workload.program
        self.analyzer = self.spec.analyzer(self.program)
        self.analyzer.dcache_bounds = (
            dcache_bounds
            if dcache_bounds is not None
            else calibrate_dcache_bounds(workload)
        )
        self.num_subtasks = max(1, self.program.num_subtasks)
        if config.pet_policy == "lastn":
            self.pet = LastNPET(self.num_subtasks, window=config.pet_window)
        elif config.pet_policy == "histogram":
            self.pet = HistogramPET(
                self.num_subtasks, target_rate=config.histogram_rate
            )
        else:
            raise ValueError(f"unknown pet_policy {config.pet_policy!r}")
        self.machine = self.spec.machine(self.program)
        self._incr_base = self.program.address_of(layout.VISA_INCR_SYMBOL)
        self._aet_base = self.program.address_of(layout.VISA_AET_SYMBOL)

    def padded_pets(self) -> list[int]:
        """Current PETs with the configured safety margin applied."""
        return [
            int(p * (1.0 + self.config.pet_margin)) + self.config.pet_slack_cycles
            for p in self.pet.predict()
        ]

    # -- helpers ---------------------------------------------------------------

    def wcet_fn(self, freq_hz: float):
        return self.analyzer.analyze(freq_hz)

    def safe_setting(self) -> Setting:
        """Lowest non-speculative safe setting, leaving room for ovhd."""
        budget = self.config.deadline - self.config.ovhd
        return lowest_safe_frequency(self.wcet_fn, budget, self.table)

    def write_increments(self, increments: list[int]) -> None:
        self.machine.write_data_words(self._incr_base, increments)

    def read_aets(self) -> list[int]:
        return self.machine.read_data_words(self._aet_base, self.num_subtasks)

    def reset_task(self, state: CoreState, seed: int) -> dict[str, list]:
        inputs = self.workload.generate_inputs(seed)
        self.workload.apply_inputs(self.machine, inputs)
        state.pc = self.program.entry
        state.halted = False
        return inputs

    def snapshot(self, state: CoreState) -> tuple[int, Counter]:
        return state.now, Counter(state.counters)

    def phase_from(
        self,
        state: CoreState,
        before: tuple[int, Counter],
        kind: str,
        mode: str,
        setting: Setting,
    ) -> Phase:
        cycles = state.now - before[0]
        counters = state.counters - before[1]
        return Phase(
            kind=kind,
            mode=mode,
            freq_hz=setting.freq_hz,
            volts=setting.volts,
            cycles=cycles,
            seconds=cycles / setting.freq_hz,
            counters=counters,
        )

    def idle_phase(self, seconds: float) -> Phase:
        lowest = self.table.lowest
        cycles = int(seconds * lowest.freq_hz)
        return Phase(
            kind="idle",
            mode="idle",
            freq_hz=lowest.freq_hz,
            volts=lowest.volts,
            cycles=cycles,
            seconds=seconds,
            counters=Counter(),
        )

    def dvs_software_phase(self, setting: Setting) -> Phase:
        cycles = self.config.dvs_software_cycles
        return Phase(
            kind="dvs_sw",
            mode="simple_fixed",
            freq_hz=setting.freq_hz,
            volts=setting.volts,
            cycles=cycles,
            seconds=cycles / setting.freq_hz,
            counters=Counter(
                {"fetch": cycles, "icache": cycles, "fu": cycles, "regread": cycles}
            ),
        )

    def finish_run(
        self,
        index: int,
        phases: list[Phase],
        busy_seconds: float,
        mispredicted: bool,
        pair: FrequencyPair,
        inputs: dict[str, list],
    ) -> TaskRun:
        if busy_seconds > self.config.deadline + 1e-12:
            raise DeadlineMissError(
                f"{self.workload.name} instance {index}: finished at "
                f"{busy_seconds * 1e6:.2f} us > deadline "
                f"{self.config.deadline * 1e6:.2f} us"
            )
        if self.config.verify_outputs:
            self.workload.check_outputs(self.machine, inputs, rel_tol=1e-9)
        slack = self.config.period - busy_seconds
        if slack > 0:
            phases.append(self.idle_phase(slack))
        return TaskRun(
            index=index,
            phases=phases,
            mispredicted=mispredicted,
            completion_seconds=busy_seconds,
            deadline=self.config.deadline,
            f_spec=pair.spec,
            f_rec=pair.rec,
        )

    # -- whole-run drivers -------------------------------------------------------

    def run_span(
        self, start: int, stop: int, flush_instances: set[int] = frozenset()
    ) -> list[TaskRun]:
        """Execute task instances ``[start, stop)``.

        Instance indices are absolute (they seed the input generator and
        drive the re-evaluation schedule), so a runtime restored from a
        warm-up snapshot resumes with ``start`` = the snapshot's instance
        count and produces exactly what a cold run would from that point.
        """
        return [
            self.run_instance(i, flush=i in flush_instances)
            for i in range(start, stop)
        ]

    def run(self, flush_instances: set[int] = frozenset()) -> list[TaskRun]:
        """Execute all configured task instances."""
        return self.run_span(0, self.config.instances, flush_instances)

    # -- snapshot subsystem ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Versioned JSON-able capture of the full inter-instance state.

        Valid only at an instance boundary (both pipelines drain there;
        per-segment timing structures never persist across instances, so
        machine + core + policy state is the *complete* state).
        """
        snap = {
            "format": FORMAT_VERSION,
            "kind": self.kind,
            "machine": self.machine.dump_state(),
            "core_state": self.core.state.dump_state(),
            "freq_hz": self.core.freq_hz,
            "pet": self.pet.dump_state(),
            "pair": [
                [self.pair.spec.freq_hz, self.pair.spec.volts],
                [self.pair.rec.freq_hz, self.pair.rec.volts],
            ],
        }
        snap.update(self._extra_state())
        return snap

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` payload into this runtime.

        The runtime must have been constructed for the same workload and
        configuration; the payload supplies the mutable state only.
        """
        if snap.get("format") != FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format {snap.get('format')!r} != {FORMAT_VERSION}"
            )
        if snap.get("kind") != self.kind:
            raise SnapshotError(
                f"snapshot kind {snap.get('kind')!r} != {self.kind!r}"
            )
        self.machine.load_state(snap["machine"])
        self.core.state.load_state(snap["core_state"])
        self.core.set_frequency(float(snap["freq_hz"]))
        self.pet.load_state(snap["pet"])
        (spec_f, spec_v), (rec_f, rec_v) = snap["pair"]
        self.pair = FrequencyPair(
            spec=Setting(freq_hz=float(spec_f), volts=float(spec_v)),
            rec=Setting(freq_hz=float(rec_f), volts=float(rec_v)),
        )
        self._load_extra_state(snap)

    def _extra_state(self) -> dict:
        return {}

    def _load_extra_state(self, snap: dict) -> None:
        pass


class VISARuntime(_RuntimeBase):
    """Complex processor executing a hard real-time task under VISA."""

    kind = "visa"

    def __init__(self, workload, config, spec=None, table=None,
                 dcache_bounds=None):
        super().__init__(workload, config, spec, table, dcache_bounds)
        self.core = ComplexCore(self.machine, freq_hz=self.table.highest.freq_hz)
        # Warm-up configuration: before any PET history exists, run at the
        # highest setting for both frequencies.  A high recovery frequency
        # keeps the checkpoints as late as possible, so the complex pipeline
        # has the full WCET budget to prove itself.
        top = self.table.highest
        self.pair = FrequencyPair(spec=top, rec=top)
        self.plan: CheckpointPlan = build_plan(
            self.config.deadline, self.config.ovhd,
            self.wcet_fn(top.freq_hz), top.freq_hz,
        )

    def reevaluate(self) -> None:
        """Re-run EQ 4 + EQ 1 from the current PET histories (§4.3).

        If the histories have degenerated to the point that EQ 4 has no
        feasible pair (e.g. PETs inflated by a burst of flushed tasks),
        the previous plan stays in force — it was proven feasible when it
        was built, and safety never depended on PET quality anyway.
        """
        if not self.pet.ready():
            return
        pets = self.padded_pets()
        try:
            pair = solve_eq4(
                pets, self.wcet_fn, self.config.deadline, self.config.ovhd,
                self.table,
            )
        except InfeasibleError:
            return
        self.pair = pair
        self.plan = build_plan(
            self.config.deadline,
            self.config.ovhd,
            self.wcet_fn(self.pair.rec.freq_hz),
            self.pair.spec.freq_hz,
        )

    def run_instance(self, index: int, flush: bool = False) -> TaskRun:
        SIM_COUNTS[self.kind] += 1
        phases: list[Phase] = []
        if index and index % self.config.reeval_period == 0:
            self.reevaluate()
            phases.append(self.dvs_software_phase(self.pair.spec))
        inputs = self.reset_task(self.core.state, index)
        self.write_increments(self.plan.increments)
        if flush:
            self.machine.flush_caches_and_predictor()
            self.core.flush_predictors()

        self.machine.mmio.exceptions_masked = False
        self.core.set_frequency(self.pair.spec.freq_hz)
        before = self.snapshot(self.core.state)
        result = self.core.run()
        phases.append(
            self.phase_from(self.core.state, before, "spec", "complex", self.pair.spec)
        )
        busy = phases[-1].seconds
        mispredicted = result.reason == "watchdog"
        if mispredicted:
            # Which sub-task missed (captured before recovery's snippets
            # advance the mark counter further).
            fired_subtask = max(0, self.machine.mmio.wd_marks - 1)
            # Missed checkpoint: drain, switch frequency and mode (§2.2).
            self.machine.mmio.exceptions_masked = True
            busy += self.config.ovhd
            self.core.set_frequency(self.pair.rec.freq_hz)
            simple = self.core.simple_mode_core()
            before = self.snapshot(self.core.state)
            recovery = simple.run()
            if recovery.reason != "halt":
                raise ReproError(
                    f"recovery did not complete: {recovery.reason}"
                )
            phases.append(
                self.phase_from(
                    self.core.state, before, "recovery", "simple_mode",
                    self.pair.rec,
                )
            )
            busy += phases[-1].seconds
            # §4.3: record the history anyway, scaling the sub-tasks that
            # ran (partly) in simple mode down by the mode speed ratio —
            # without this the PET feedback loop goes blind after a
            # recovery and cold-predictor instances keep firing.
            for k, aet in enumerate(self.read_aets()):
                if k >= fired_subtask:
                    aet = int(aet / self.config.aet_scale_ratio)
                self.pet.record(k, aet)
            if self.config.reeval_after_recovery:
                self.reevaluate()
        else:
            if result.reason != "halt":
                raise ReproError(f"unexpected stop: {result.reason}")
            self.machine.mmio.exceptions_masked = True
            for k, aet in enumerate(self.read_aets()):
                self.pet.record(k, aet)
        return self.finish_run(index, phases, busy, mispredicted, self.pair, inputs)

    def _extra_state(self) -> dict:
        return {
            "gshare": self.core.gshare.dump_state(),
            "indirect": self.core.indirect.dump_state(),
            "plan": self.plan.dump_state(),
        }

    def _load_extra_state(self, snap: dict) -> None:
        self.core.gshare.load_state(snap["gshare"])
        self.core.indirect.load_state(snap["indirect"])
        self.plan = CheckpointPlan.from_state(snap["plan"])


class SimpleFixedRuntime(_RuntimeBase):
    """Explicitly-safe processor baseline (§5.2, §6.2).

    Uses conventional frequency speculation (EQ 2) only when it lowers the
    frequency below the non-speculative safe setting, exactly as the paper
    evaluates it.
    """

    kind = "simple"

    def __init__(self, workload, config, spec=None, table=None,
                 dcache_bounds=None, allow_speculation: bool = True):
        super().__init__(workload, config, spec, table, dcache_bounds)
        self.core = InOrderCore(self.machine, freq_hz=self.table.highest.freq_hz)
        self.allow_speculation = allow_speculation
        safe = self.safe_setting()
        self.safe = safe
        self.pair = FrequencyPair(spec=safe, rec=safe)
        self.speculating = False
        marks = self.program.subtask_boundaries()
        self._breaks = frozenset(marks[1:]) if len(marks) > 1 else frozenset()

    def reevaluate(self) -> None:
        if not (self.allow_speculation and self.pet.ready()):
            return
        pets = self.padded_pets()
        try:
            pair = solve_eq2(
                pets, self.wcet_fn, self.config.deadline, self.config.ovhd,
                self.table,
            )
        except InfeasibleError:
            return
        # Speculate only when it actually reduces frequency (§6.2).
        if pair.spec.freq_hz < self.safe.freq_hz:
            self.pair = pair
            self.speculating = True
        else:
            self.pair = FrequencyPair(spec=self.safe, rec=self.safe)
            self.speculating = False

    def run_instance(self, index: int, flush: bool = False) -> TaskRun:
        SIM_COUNTS[self.kind] += 1
        phases: list[Phase] = []
        if index and index % self.config.reeval_period == 0:
            self.reevaluate()
            phases.append(self.dvs_software_phase(self.pair.spec))
        inputs = self.reset_task(self.core.state, index)
        # Watchdog stays masked: EQ 2 detects mispredictions at sub-task
        # completion boundaries by comparing against the PET budget.
        self.write_increments([0x3FFF_FFFF] * self.num_subtasks)
        if flush:
            self.machine.flush_caches_and_predictor()

        self.core.drain()
        mispredicted = False
        busy = 0.0
        if not self.speculating:
            self.core.set_frequency(self.pair.spec.freq_hz)
            before = self.snapshot(self.core.state)
            result = self.core.run()
            if result.reason != "halt":
                raise ReproError(f"unexpected stop: {result.reason}")
            phases.append(
                self.phase_from(
                    self.core.state, before, "spec", "simple_fixed", self.pair.spec
                )
            )
            busy = phases[-1].seconds
        else:
            pets = self.padded_pets()
            self.core.set_frequency(self.pair.spec.freq_hz)
            before = self.snapshot(self.core.state)
            completed = 0
            while True:
                result = self.core.run(break_addrs=self._breaks)
                segment_done = result.reason == "halt"
                phase = self.phase_from(
                    self.core.state, before, "spec", "simple_fixed", self.pair.spec
                )
                if segment_done:
                    phases.append(phase)
                    busy += phase.seconds
                    break
                # A sub-task just completed (its successor's snippet has not
                # run yet, so the live cycle counter still holds its AET).
                live_aet = self.machine.mmio.cycle_count(self.core.state.now)
                completed += 1
                if live_aet > pets[completed - 1]:
                    # Misprediction: switch to the recovery frequency and
                    # finish the remaining sub-tasks non-speculatively.
                    phases.append(phase)
                    busy += phase.seconds + self.config.ovhd
                    mispredicted = True
                    self.core.drain()
                    self.core.set_frequency(self.pair.rec.freq_hz)
                    before = self.snapshot(self.core.state)
                    result = self.core.run()
                    if result.reason != "halt":
                        raise ReproError(f"unexpected stop: {result.reason}")
                    rec_phase = self.phase_from(
                        self.core.state, before, "recovery", "simple_fixed",
                        self.pair.rec,
                    )
                    phases.append(rec_phase)
                    busy += rec_phase.seconds
                    break
        if not mispredicted:
            for k, aet in enumerate(self.read_aets()):
                self.pet.record(k, aet)
        return self.finish_run(index, phases, busy, mispredicted, self.pair, inputs)

    def _extra_state(self) -> dict:
        return {"speculating": self.speculating}

    def _load_extra_state(self, snap: dict) -> None:
        self.speculating = bool(snap["speculating"])
        # Pipeline-timing state never survives an instance boundary
        # (run_instance drains first), but reset it anyway so a restored
        # runtime is indistinguishable from a cold one by inspection.
        self.core.drain()
