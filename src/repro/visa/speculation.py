"""Frequency speculation solvers (paper §4.1–4.2, EQ 2 and EQ 4).

Conventional frequency speculation [Rotenberg 01] (EQ 2) needs safe WCETs
*on the processor that executes* — which for a complex pipeline may be
impossible to produce.  The VISA adaptation (EQ 4) replaces the recovery
terms with WCETs on the hypothetical simple pipeline, because recovery
switches to simple mode:

    sum_{j<=i} PET_{j, f_spec} + ovhd + sum_{k>=i} WCET_{k, f_rec} <= deadline

for every sub-task i (any one may be the mispredicted one).  Both solvers
search the DVS table for the feasible pair minimizing the speculative
frequency first and the recovery frequency second ("the lowest
{f_spec, f_rec} pair", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import InfeasibleError
from repro.visa.dvs import DVSTable, Setting
from repro.wcet.analyzer import TaskWCET

WCETFn = Callable[[float], TaskWCET]


@dataclass(frozen=True)
class FrequencyPair:
    """A speculative/recovery frequency assignment."""

    spec: Setting
    rec: Setting


def lowest_safe_frequency(
    wcet_fn: WCETFn, deadline: float, table: DVSTable
) -> Setting:
    """Lowest setting whose *non-speculative* WCET meets the deadline.

    This is the explicitly-safe baseline: run the whole task at one
    frequency such that the summed sub-task WCETs fit the deadline.
    """
    for setting in table:
        if wcet_fn(setting.freq_hz).total_seconds <= deadline:
            return setting
    raise InfeasibleError(
        f"deadline {deadline * 1e6:.2f} us infeasible even at "
        f"{table.highest.freq_hz / 1e6:.0f} MHz"
    )


def _eq4_feasible(
    pets_cycles: list[int],
    wcet_rec: TaskWCET,
    f_spec: float,
    deadline: float,
    ovhd: float,
) -> bool:
    prefix = 0.0
    for i in range(len(pets_cycles)):
        prefix += pets_cycles[i] / f_spec
        if prefix + ovhd + wcet_rec.tail_seconds(i) > deadline:
            return False
    return True


def solve_eq4(
    pets_cycles: list[int],
    wcet_fn: WCETFn,
    deadline: float,
    ovhd: float,
    table: DVSTable,
) -> FrequencyPair:
    """Minimum {f_spec, f_rec} satisfying EQ 4 for every sub-task.

    Args:
        pets_cycles: Per-sub-task PETs in complex-core cycles.
        wcet_fn: Frequency -> per-sub-task VISA WCETs (recovery bound).
        deadline: Task deadline, seconds.
        ovhd: Frequency/mode switch overhead, seconds.
        table: The DVS operating points.

    Raises:
        InfeasibleError: when no pair in the table is safe.
    """
    for spec in table:
        for rec in table:
            wcet_rec = wcet_fn(rec.freq_hz)
            if _eq4_feasible(pets_cycles, wcet_rec, spec.freq_hz, deadline, ovhd):
                return FrequencyPair(spec=spec, rec=rec)
    raise InfeasibleError(
        f"EQ 4 infeasible for deadline {deadline * 1e6:.2f} us"
    )


def _eq2_feasible(
    pets_cycles: list[int],
    wcet_spec: TaskWCET,
    wcet_rec: TaskWCET,
    f_spec: float,
    deadline: float,
    ovhd: float,
) -> bool:
    count = len(pets_cycles)
    prefix = 0.0
    for i in range(count):
        total = (
            prefix
            + wcet_spec.subtask_seconds(i)
            + ovhd
            + wcet_rec.tail_seconds(i + 1)
        )
        if total > deadline:
            return False
        prefix += pets_cycles[i] / f_spec
    return True


def solve_eq2(
    pets_cycles: list[int],
    wcet_fn: WCETFn,
    deadline: float,
    ovhd: float,
    table: DVSTable,
) -> FrequencyPair:
    """Conventional frequency speculation (EQ 2) for the safe pipeline.

    The executing pipeline is itself analyzable, so the mispredicted
    sub-task is bounded by its WCET *at the speculative frequency*; no
    mode switch exists, only a frequency switch.
    """
    for spec in table:
        wcet_spec = wcet_fn(spec.freq_hz)
        for rec in table:
            wcet_rec = wcet_fn(rec.freq_hz)
            if _eq2_feasible(
                pets_cycles, wcet_spec, wcet_rec, spec.freq_hz, deadline, ovhd
            ):
                return FrequencyPair(spec=spec, rec=rec)
    raise InfeasibleError(
        f"EQ 2 infeasible for deadline {deadline * 1e6:.2f} us"
    )
