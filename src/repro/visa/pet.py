"""Predicted execution time (PET) selection from AET histories (paper §4.3).

Each sub-task records its actual execution time (AET) per task instance
via the cycle-counter snippets.  PETs are re-evaluated every
``reeval_period`` (default 10) task executions:

* **last-N** (used in all the paper's experiments): PET = max of the last
  N recorded AETs.
* **histogram**: PET chosen so that a target fraction of recorded AETs
  exceed it (probabilistic misprediction-rate targeting).

AETs of mispredicted sub-tasks are partially executed in simple mode,
inflating the measurement; the simple-mode portion is scaled down by the
relative performance of the two modes before recording (§4.3).

PETs are kept in *cycles* of the complex core.  Converting to time at a
candidate frequency as ``cycles / f`` is slightly conservative at lower
frequencies (memory stalls take fewer cycles there), which only makes
speculation safer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


class LastNPET:
    """PET = maximum of the last N AETs (the paper's default policy)."""

    def __init__(self, num_subtasks: int, window: int = 10):
        self.window = window
        self._history: list[deque[int]] = [
            deque(maxlen=window) for _ in range(num_subtasks)
        ]

    def record(self, subtask: int, aet_cycles: int) -> None:
        self._history[subtask].append(aet_cycles)

    def ready(self) -> bool:
        """True once every sub-task has at least one AET."""
        return all(history for history in self._history)

    def predict(self) -> list[int]:
        """Current PET (cycles) per sub-task."""
        return [max(history) for history in self._history]

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        """JSON-able history (policy tag guards against cross-policy loads)."""
        return {
            "policy": "lastn",
            "window": self.window,
            "history": [list(history) for history in self._history],
        }

    def load_state(self, payload: dict) -> None:
        if payload.get("policy") != "lastn":
            raise ValueError(f"not a last-N PET payload: {payload.get('policy')!r}")
        self.window = int(payload["window"])
        self._history = [
            deque((int(v) for v in history), maxlen=self.window)
            for history in payload["history"]
        ]


class HistogramPET:
    """PET targeting a misprediction probability from an AET histogram.

    ``target_rate`` = 0.0 selects the maximum recorded AET (zero expected
    mispredictions); 0.10 allows ~10 % of recorded AETs to exceed the PET,
    trading a lower speculative frequency against more recovery-mode time
    (the trade-off §4.3 discusses).
    """

    def __init__(
        self,
        num_subtasks: int,
        target_rate: float = 0.0,
        capacity: int = 200,
    ):
        if not 0.0 <= target_rate < 1.0:
            raise ValueError(f"target_rate must be in [0, 1), got {target_rate}")
        self.target_rate = target_rate
        self._history: list[deque[int]] = [
            deque(maxlen=capacity) for _ in range(num_subtasks)
        ]

    def record(self, subtask: int, aet_cycles: int) -> None:
        self._history[subtask].append(aet_cycles)

    def ready(self) -> bool:
        return all(history for history in self._history)

    def predict(self) -> list[int]:
        pets = []
        for history in self._history:
            ordered = sorted(history)
            # Index such that ~target_rate of samples are strictly higher.
            index = min(
                len(ordered) - 1,
                int((1.0 - self.target_rate) * (len(ordered) - 1) + 0.9999),
            )
            pets.append(ordered[index])
        return pets

    # -- snapshot subsystem ------------------------------------------------------

    def dump_state(self) -> dict:
        return {
            "policy": "histogram",
            "target_rate": self.target_rate,
            "capacity": self._history[0].maxlen if self._history else 0,
            "history": [list(history) for history in self._history],
        }

    def load_state(self, payload: dict) -> None:
        if payload.get("policy") != "histogram":
            raise ValueError(
                f"not a histogram PET payload: {payload.get('policy')!r}"
            )
        self.target_rate = float(payload["target_rate"])
        capacity = int(payload["capacity"])
        self._history = [
            deque((int(v) for v in history), maxlen=capacity)
            for history in payload["history"]
        ]


@dataclass
class AETScaler:
    """Adjust AETs of mispredicted sub-tasks (paper §4.3).

    The unfinished portion ran in simple mode; dividing those cycles by
    the assumed complex/simple speed ratio approximates what the complex
    pipeline would have needed.
    """

    speed_ratio: float = 4.0

    def adjust(self, complex_cycles: int, simple_cycles: int) -> int:
        return int(complex_cycles + simple_cycles / self.speed_ratio)
