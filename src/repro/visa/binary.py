"""Timed binaries: parameterized WCET appended to a program (paper §1.2).

The paper's "broader implication": extend binary compatibility to *timing
safety*.  A task binary carries WCET information parameterized so any
processor complying with the same VISA can schedule it without re-running
the timing analyzer:

    "WCET would be expressed in cycles for frequency scaling, divided into
    components that scale and do not scale with frequency, and
    parameterized in terms of worst-case memory latency since the memory
    sub-system is outside the influence of processor design."

Per sub-task *k* we store an affine bound

    WCET_k(stall) <= base_k + slope_k * stall_cycles

where ``stall_cycles = ceil(f * mem_stall_ns)`` is the worst-case memory
stall at the deployment frequency.  The pair is fitted over the analyzer's
results across the whole DVS stall range and *verified* to dominate every
exact analysis in that range, so the packaged bound is safe wherever the
deployment's memory latency and frequency fall inside the declared
envelope.  A VISA fingerprint ties the numbers to the exact pipeline
specification they were derived for.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa.program import Program
from repro.memory.machine import mem_stall_cycles
from repro.visa.spec import VISASpec
from repro.wcet.analyzer import SubtaskWCET, TaskWCET, WCETAnalyzer


def visa_fingerprint(spec: VISASpec) -> str:
    """Stable identifier of a VISA timing specification."""
    ic, dc = spec.icache, spec.dcache
    return (
        f"visa-1/i{ic.size_bytes}x{ic.assoc}x{ic.block_bytes}"
        f"/d{dc.size_bytes}x{dc.assoc}x{dc.block_bytes}"
        f"/mem{spec.mem_stall_ns:g}ns/bp{spec.branch_penalty}"
    )


@dataclass
class WCETParam:
    """Affine per-sub-task WCET bound in the paper's parameterization."""

    base_cycles: int  # frequency-independent component
    stall_slope: float  # extra cycles per memory-stall cycle
    dmiss_bound: int  # worst-case D-cache misses (each costs one stall)

    def cycles(self, stall_cycles: int) -> int:
        return (
            self.base_cycles
            + math.ceil(self.stall_slope * stall_cycles)
            + self.dmiss_bound * stall_cycles
        )


@dataclass
class TimedBinary:
    """A program image plus its portable WCET annotation."""

    program: Program
    fingerprint: str
    mem_stall_ns: float
    stall_range: tuple[int, int]
    params: list[WCETParam] = field(default_factory=list)

    def wcet(self, freq_hz: float, spec: VISASpec | None = None) -> TaskWCET:
        """Per-sub-task WCETs at a deployment frequency — no analyzer run.

        Raises:
            ReproError: if ``spec`` (when given) does not match the VISA
                the annotation was derived for, or the frequency's stall
                falls outside the certified range.
        """
        if spec is not None and visa_fingerprint(spec) != self.fingerprint:
            raise ReproError(
                f"VISA mismatch: binary certified for {self.fingerprint}, "
                f"deployment is {visa_fingerprint(spec)}"
            )
        stall = mem_stall_cycles(freq_hz, self.mem_stall_ns)
        lo, hi = self.stall_range
        if not lo <= stall <= hi:
            raise ReproError(
                f"stall {stall} cycles outside certified range [{lo}, {hi}]"
            )
        task = TaskWCET(freq_hz=freq_hz, stall=stall)
        for index, param in enumerate(self.params):
            task.subtasks.append(
                SubtaskWCET(
                    index=index,
                    cycles=param.base_cycles
                    + math.ceil(param.stall_slope * stall),
                    stall=stall,
                    dmiss_bound=param.dmiss_bound,
                )
            )
        return task


def attach_wcet(
    program: Program,
    spec: VISASpec | None = None,
    dcache_bounds: list[int] | None = None,
    freq_range: tuple[float, float] = (100e6, 1e9),
) -> TimedBinary:
    """Analyze ``program`` and package portable WCET parameters.

    Fits the affine per-sub-task bound over the stall range implied by
    ``freq_range`` and verifies it dominates the exact analysis at every
    DVS-grid stall value (25 MHz steps).
    """
    spec = spec or VISASpec()
    analyzer = spec.analyzer(program)
    analyzer.dcache_bounds = dcache_bounds
    stall_lo = spec.stall_cycles(freq_range[0])
    stall_hi = spec.stall_cycles(freq_range[1])

    grid_hz = [
        f
        for f in (freq_range[0] + 25e6 * i for i in range(10_000))
        if f <= freq_range[1] + 1
    ]
    tasks = {f: analyzer.analyze(f) for f in grid_hz}
    count = analyzer.num_subtasks

    params: list[WCETParam] = []
    for k in range(count):
        lo_cycles = tasks[grid_hz[0]].subtasks[k].cycles
        hi_cycles = tasks[grid_hz[-1]].subtasks[k].cycles
        lo_stall = tasks[grid_hz[0]].stall
        hi_stall = tasks[grid_hz[-1]].stall
        if hi_stall == lo_stall:
            slope = 0.0
        else:
            slope = (hi_cycles - lo_cycles) / (hi_stall - lo_stall)
        base = lo_cycles - slope * lo_stall
        # Raise the intercept until the affine bound dominates every grid
        # point (analysis is near-affine in the stall, but not exactly).
        shortfall = 0
        for f in grid_hz:
            task = tasks[f]
            bound = base + slope * task.stall
            exact = task.subtasks[k].cycles
            shortfall = max(shortfall, math.ceil(exact - bound))
        dmiss = tasks[grid_hz[0]].subtasks[k].dmiss_bound
        params.append(
            WCETParam(
                base_cycles=int(math.ceil(base)) + shortfall,
                stall_slope=slope,
                dmiss_bound=dmiss,
            )
        )
    return TimedBinary(
        program=program,
        fingerprint=visa_fingerprint(spec),
        mem_stall_ns=spec.mem_stall_ns,
        stall_range=(min(stall_lo, stall_hi), max(stall_lo, stall_hi)),
        params=params,
    )


# -- serialization ---------------------------------------------------------------

def dumps(binary: TimedBinary) -> str:
    """Serialize a timed binary (program + WCET annotation) to JSON."""
    program = binary.program
    return json.dumps(
        {
            "format": "rtp32-timed-binary-1",
            "fingerprint": binary.fingerprint,
            "mem_stall_ns": binary.mem_stall_ns,
            "stall_range": list(binary.stall_range),
            "wcet": [
                {
                    "base_cycles": p.base_cycles,
                    "stall_slope": p.stall_slope,
                    "dmiss_bound": p.dmiss_bound,
                }
                for p in binary.params
            ],
            "program": {
                "words": program.words,
                "data": {str(k): v for k, v in program.data.items()},
                "symbols": program.symbols,
                "loop_bounds": {
                    str(k): v for k, v in program.loop_bounds.items()
                },
                "subtask_marks": {
                    str(k): v for k, v in program.subtask_marks.items()
                },
                "entry": program.entry,
                "text_base": program.text_base,
                "data_base": program.data_base,
            },
        }
    )


def loads(text: str) -> TimedBinary:
    """Load a timed binary produced by :func:`dumps`.

    Raises:
        ReproError: on an unknown format tag.
    """
    payload = json.loads(text)
    if payload.get("format") != "rtp32-timed-binary-1":
        raise ReproError(f"unknown binary format {payload.get('format')!r}")
    prog = payload["program"]
    program = Program(
        words=list(prog["words"]),
        data={int(k): v for k, v in prog["data"].items()},
        symbols=dict(prog["symbols"]),
        loop_bounds={int(k): v for k, v in prog["loop_bounds"].items()},
        subtask_marks={int(k): v for k, v in prog["subtask_marks"].items()},
        entry=prog["entry"],
        text_base=prog["text_base"],
        data_base=prog["data_base"],
    )
    return TimedBinary(
        program=program,
        fingerprint=payload["fingerprint"],
        mem_stall_ns=payload["mem_stall_ns"],
        stall_range=tuple(payload["stall_range"]),
        params=[
            WCETParam(
                base_cycles=entry["base_cycles"],
                stall_slope=entry["stall_slope"],
                dmiss_bound=entry["dmiss_bound"],
            )
            for entry in payload["wcet"]
        ],
    )
