"""Conventional concurrency: background work in the RT task's slack (§1.1).

The paper's first application of VISA's harvested slack: "finishing the
hard real-time task earlier means non-real-time and soft real-time tasks
can be scheduled during the slack following the hard real-time task."

:class:`SlackScheduler` wraps a :class:`~repro.visa.runtime.VISARuntime`
(or the simple-fixed baseline) and *actually executes* a background
program on the same core during each period's slack: after the hard task
completes, the background program runs until the period expires, then is
preempted (its architectural state persists across periods, like a real
context that simply stops being scheduled).  Throughput is measured in
retired background instructions — making "VISA frees slack" a quantity,
not a slogan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.memory.machine import Machine
from repro.pipelines.inorder import InOrderCore
from repro.pipelines.ooo.core import ComplexCore
from repro.visa.dvs import Setting
from repro.visa.runtime import TaskRun, _RuntimeBase


@dataclass
class SlackReport:
    """Background-thread progress across a run sequence."""

    instructions: int
    slices: int
    slack_seconds: float
    completions: int  # times the background program ran to halt

    @property
    def mips(self) -> float:
        """Background throughput in instructions per second of wall slack."""
        return self.instructions / self.slack_seconds if self.slack_seconds else 0.0


class BackgroundContext:
    """A resumable non-real-time program context.

    Runs in cycle-budgeted slices; when it halts, it restarts from the
    entry (modelling a continuous background service loop) and the
    completion is counted.
    """

    def __init__(self, program: Program, core_kind: str = "complex"):
        self.program = program
        self.machine = Machine(program)
        if core_kind == "complex":
            self.core = ComplexCore(self.machine)
        else:
            self.core = InOrderCore(self.machine)
        self.completions = 0
        self.instructions = 0

    def run_slice(self, cycle_budget: int, setting: Setting, chunk: int = 128) -> int:
        """Execute up to ``cycle_budget`` cycles at ``setting``; returns
        instructions retired in this slice."""
        self.core.set_frequency(setting.freq_hz)
        if hasattr(self.core, "drain"):
            self.core.drain()
        start_cycle = self.core.state.now
        start_instr = self.core.state.instret
        while self.core.state.now - start_cycle < cycle_budget:
            if self.core.state.halted:
                self.completions += 1
                self.core.state.pc = self.program.entry
                self.core.state.halted = False
                if hasattr(self.core, "drain"):
                    self.core.drain()
            result = self.core.run(max_instructions=chunk)
            if result.reason not in ("halt", "limit"):
                break
        retired = self.core.state.instret - start_instr
        self.instructions += retired
        return retired


class SlackScheduler:
    """Time-multiplex a hard RT task and a background context on one core.

    The RT task runs under its runtime's full VISA machinery (watchdog,
    EQ 4, recovery); the background context consumes whatever wall time
    remains in each period, at the lowest DVS setting (conserving the
    power story) or a caller-chosen one.
    """

    def __init__(
        self,
        runtime: _RuntimeBase,
        background: BackgroundContext,
        background_setting: Setting | None = None,
    ):
        self.runtime = runtime
        self.background = background
        self.setting = background_setting or runtime.table.lowest
        self.slack_seconds = 0.0
        self.slices = 0

    def run(self, flush_instances: set[int] = frozenset()) -> list[TaskRun]:
        runs = []
        for index in range(self.runtime.config.instances):
            run = self.runtime.run_instance(index, flush=index in flush_instances)
            runs.append(run)
            slack = self.runtime.config.period - run.completion_seconds
            if slack > 0:
                budget = int(slack * self.setting.freq_hz)
                self.background.run_slice(budget, self.setting)
                self.slack_seconds += slack
                self.slices += 1
        return runs

    def report(self) -> SlackReport:
        return SlackReport(
            instructions=self.background.instructions,
            slices=self.slices,
            slack_seconds=self.slack_seconds,
            completions=self.background.completions,
        )
