"""SMT application of VISA (paper §1.1, §8 — modelled future work).

The paper's most ambitious application: run soft/non-real-time threads
*simultaneously* with the hard real-time task on an SMT processor.  The
hard task only needs as much bandwidth as the hypothetical simple pipeline
to meet its checkpoints; whatever the wide OOO core has left over feeds the
background threads.  If contention ever makes the hard task miss a
checkpoint, the core falls back to simple mode **and idles the other
threads** ("they are not context-switched out, but no new instructions are
fetched"), restoring the full VISA guarantee.

Model
-----

Static bandwidth partitioning, the standard first-order SMT model: with
``n`` background threads at fetch aggressiveness ``alpha``, the real-time
thread's effective share of every bandwidth resource (fetch/dispatch/
issue/commit width, cache ports) and every partitioned buffer (ROB, IQ,
LSQ) is ``1 / (1 + alpha * n)``.  The slots not used by the RT thread are
reported as *background slot-cycles* — the throughput VISA makes safe to
harvest.  Wrong answers here can only create checkpoint misses, never
deadline misses, which is precisely the property the paper exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pipelines.ooo.core import ComplexCore, OOOParams
from repro.visa.runtime import Phase, RuntimeConfig, TaskRun, VISARuntime
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SMTConfig:
    """Co-scheduling configuration.

    Attributes:
        background_threads: Number of simultaneously-running non-RT threads.
        alpha: Per-thread bandwidth aggressiveness (1.0 = equal sharing;
            below 1.0 models background threads with lower fetch priority,
            e.g. ICOUNT biased toward the RT thread).
    """

    background_threads: int = 0
    alpha: float = 1.0

    @property
    def rt_share(self) -> float:
        """Fraction of core bandwidth the real-time thread receives."""
        return 1.0 / (1.0 + self.alpha * self.background_threads)


def partitioned_params(base: OOOParams, config: SMTConfig) -> OOOParams:
    """The complex core's resources as seen by the real-time thread."""
    share = config.rt_share

    def width(value: int) -> int:
        return max(1, math.floor(value * share))

    def entries(value: int) -> int:
        return max(4, math.floor(value * share))

    return OOOParams(
        fetch_width=width(base.fetch_width),
        dispatch_width=width(base.dispatch_width),
        issue_width=width(base.issue_width),
        commit_width=width(base.commit_width),
        rob_entries=entries(base.rob_entries),
        iq_entries=entries(base.iq_entries),
        lsq_entries=entries(base.lsq_entries),
        num_fus=max(1, math.floor(base.num_fus * share)),
        cache_ports=max(1, math.floor(base.cache_ports * share)),
        issue_to_ex=base.issue_to_ex,
        frontend_depth=base.frontend_depth,
    )


@dataclass
class SMTReport:
    """Throughput accounting for one run sequence."""

    background_slot_cycles: int
    rt_complex_cycles: int
    recovery_cycles: int
    missed_checkpoints: int

    @property
    def background_share(self) -> float:
        total = self.background_slot_cycles + self.rt_complex_cycles
        return self.background_slot_cycles / total if total else 0.0


class SMTVISARuntime(VISARuntime):
    """VISA runtime on an SMT core sharing bandwidth with other threads.

    Identical safety machinery to :class:`VISARuntime`; only the complex-
    mode core is bandwidth-partitioned.  Simple mode (recovery) idles the
    background threads, so it keeps the full-width in-order timing.
    """

    def __init__(
        self,
        workload: Workload,
        config: RuntimeConfig,
        smt: SMTConfig,
        **kwargs,
    ):
        super().__init__(workload, config, **kwargs)
        self.smt = smt
        base = self.core.params
        self.core = ComplexCore(
            self.machine,
            state=self.core.state,
            freq_hz=self.core.freq_hz,
            params=partitioned_params(base, smt),
        )
        self._full_issue_width = base.issue_width

    def report(self, runs: list[TaskRun]) -> SMTReport:
        """Aggregate background-thread throughput across ``runs``.

        Background threads use the issue slots the RT thread's partition
        does not cover, during complex-mode phases; in recovery phases
        they are idled (zero slots), per the paper.
        """
        rt_width = self.core.params.issue_width
        spare = self._full_issue_width - rt_width
        background = 0
        rt_cycles = 0
        recovery = 0
        for run in runs:
            for phase in run.phases:
                if phase.kind == "spec" and phase.mode == "complex":
                    background += spare * phase.cycles
                    rt_cycles += rt_width * phase.cycles
                elif phase.kind == "recovery":
                    recovery += phase.cycles
                elif phase.kind == "idle":
                    # The RT task is done; the whole core belongs to the
                    # background threads until the next period.
                    background += self._full_issue_width * phase.cycles
        return SMTReport(
            background_slot_cycles=background,
            rt_complex_cycles=rt_cycles,
            recovery_cycles=recovery,
            missed_checkpoints=sum(r.mispredicted for r in runs),
        )
