"""The virtual simple architecture specification (paper §3.1, Table 1).

A :class:`VISASpec` is the contract between three parties:

* the **static timing analyzer**, which bounds WCET against it,
* the **explicitly-safe processor** (``simple-fixed``), which implements
  it literally, and
* the **complex processor**, whose simple mode must match its timing.

Keeping it in one object makes the "same VISA" relationship explicit and
lets tests verify all three parties agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.memory.cache import CacheConfig
from repro.memory.machine import Machine, MachineConfig, mem_stall_cycles
from repro.pipelines.inorder_engine import BRANCH_PENALTY
from repro.wcet.analyzer import WCETAnalyzer


@dataclass(frozen=True)
class VISASpec:
    """Timing specification of the hypothetical simple pipeline.

    Defaults are Table 1: 64 KB / 4-way / 64 B L1 caches with 1-cycle hits,
    100 ns worst-case memory stall, MIPS R10K execution latencies (encoded
    in :mod:`repro.isa.opcodes`), six pipeline stages, scalar in-order
    issue, BTFN static branch prediction with a 4-cycle misprediction
    penalty.
    """

    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    mem_stall_ns: float = 100.0
    branch_penalty: int = BRANCH_PENALTY

    def machine_config(self) -> MachineConfig:
        """Cache geometry for a machine implementing this VISA."""
        return MachineConfig(icache=self.icache, dcache=self.dcache)

    def machine(self, program: Program) -> Machine:
        """A fresh machine (memory + caches + devices) for ``program``."""
        return Machine(program, self.machine_config())

    def analyzer(self, program: Program) -> WCETAnalyzer:
        """A WCET analyzer bound to this specification."""
        return WCETAnalyzer(
            program, cache_config=self.icache, mem_stall_ns=self.mem_stall_ns
        )

    def stall_cycles(self, freq_hz: float) -> int:
        """Worst-case memory stall in cycles at ``freq_hz``."""
        return mem_stall_cycles(freq_hz, self.mem_stall_ns)
