"""Dynamic voltage/frequency scaling table (paper §5.2).

The paper extrapolates 37 settings from Intel Xscale's published range:
100 MHz / 0.70 V up to 1 GHz / 1.8 V in 25 MHz / 0.03 V increments.
(0.70 V + 36 x 0.03 V = 1.78 V; the paper rounds to 1.8 V.)

For the Figure 3 experiment, the explicitly-safe processor may enjoy a
clock-frequency advantage at equal voltage; :meth:`DVSTable.scaled`
produces that table (each setting's frequency multiplied, voltage kept).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleError


@dataclass(frozen=True)
class Setting:
    """One DVS operating point."""

    freq_hz: float
    volts: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.freq_hz / 1e6:.0f}MHz/{self.volts:.2f}V"


class DVSTable:
    """An ordered table of frequency/voltage operating points."""

    def __init__(self, settings: list[Setting]):
        if not settings:
            raise ValueError("empty DVS table")
        self.settings = sorted(settings, key=lambda s: s.freq_hz)

    @classmethod
    def xscale(cls) -> "DVSTable":
        """The paper's 37-point Xscale-derived table."""
        settings = [
            Setting(freq_hz=(100 + 25 * i) * 1e6, volts=0.70 + 0.03 * i)
            for i in range(37)
        ]
        return cls(settings)

    def scaled(self, freq_factor: float) -> "DVSTable":
        """Same voltages, frequencies multiplied by ``freq_factor``.

        Models the potential cycle-time advantage of the simple processor
        (paper §5.2 / Figure 3).
        """
        return DVSTable(
            [Setting(s.freq_hz * freq_factor, s.volts) for s in self.settings]
        )

    @property
    def lowest(self) -> Setting:
        return self.settings[0]

    @property
    def highest(self) -> Setting:
        return self.settings[-1]

    def at_least(self, freq_hz: float) -> Setting:
        """The slowest setting with frequency >= ``freq_hz``.

        Raises:
            InfeasibleError: if even the highest setting is too slow.
        """
        for setting in self.settings:
            if setting.freq_hz >= freq_hz - 1e-6:
                return setting
        raise InfeasibleError(
            f"no DVS setting reaches {freq_hz / 1e6:.0f} MHz "
            f"(max {self.highest.freq_hz / 1e6:.0f} MHz)"
        )

    def voltage_for(self, freq_hz: float) -> float:
        """Voltage of the setting used to run at ``freq_hz``."""
        return self.at_least(freq_hz).volts

    def __iter__(self):
        return iter(self.settings)

    def __len__(self) -> int:
        return len(self.settings)
