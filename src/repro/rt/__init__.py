"""Real-time scheduling extensions.

The paper's §1.1 motivates VISA with task *sets*: finishing the hard
real-time task early frees slack for other work ("conventional
concurrency").  This package provides the classic schedulability theory
the paper leans on (Liu & Layland [19]) so VISA-derived WCETs can be
plugged into system-level admission tests:

* rate-monotonic utilization bound and exact response-time analysis,
* earliest-deadline-first utilization test,
* slack accounting for background (non-real-time) work.
"""

from repro.rt.simulate import JobRecord, ScheduleResult, simulate
from repro.rt.sched import (
    PeriodicTask,
    edf_schedulable,
    hyperperiod,
    rm_response_times,
    rm_schedulable,
    rm_utilization_bound,
    slack_fraction,
    utilization,
)

__all__ = [
    "JobRecord",
    "ScheduleResult",
    "simulate",
    "PeriodicTask",
    "edf_schedulable",
    "hyperperiod",
    "rm_response_times",
    "rm_schedulable",
    "rm_utilization_bound",
    "slack_fraction",
    "utilization",
]
