"""Real-time scheduling extensions.

The paper's §1.1 motivates VISA with task *sets*: finishing the hard
real-time task early frees slack for other work ("conventional
concurrency").  This package provides the classic schedulability theory
the paper leans on (Liu & Layland [19]) so VISA-derived WCETs can be
plugged into system-level admission tests:

* rate-monotonic utilization bound and exact response-time analysis,
* earliest-deadline-first utilization test,
* slack accounting for background (non-real-time) work,
* task-set admission control combining all of the above with the VISA
  checkpoint/DVS planners (:mod:`repro.rt.admission`).
"""

from repro.rt.admission import (
    admit,
    cached_decide,
    decide,
    normalize_payload,
    task_set_digest,
)
from repro.rt.simulate import JobRecord, ScheduleResult, simulate
from repro.rt.sched import (
    HYPERPERIOD_MAX_RATIO,
    PeriodicTask,
    edf_schedulable,
    hyperperiod,
    rm_response_times,
    rm_schedulable,
    rm_utilization_bound,
    slack_fraction,
    utilization,
)

__all__ = [
    "JobRecord",
    "ScheduleResult",
    "simulate",
    "HYPERPERIOD_MAX_RATIO",
    "PeriodicTask",
    "admit",
    "cached_decide",
    "decide",
    "edf_schedulable",
    "hyperperiod",
    "normalize_payload",
    "rm_response_times",
    "rm_schedulable",
    "rm_utilization_bound",
    "slack_fraction",
    "task_set_digest",
    "utilization",
]
