"""Discrete-event simulation of periodic schedules (RM / EDF).

Complements the closed-form tests in :mod:`repro.rt.sched`: simulate the
schedule over a hyperperiod with worst-case job costs and check that no
job misses its deadline — the executable counterpart of the admission
tests, and a harness for exploring what VISA-shrunk costs buy at the
system level.

The simulator is preemptive with zero context-switch cost, which matches
the assumptions of the Liu & Layland analysis it validates.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.rt.sched import PeriodicTask, hyperperiod


@dataclass
class JobRecord:
    """One job's lifecycle in the simulated schedule."""

    task: str
    release: float
    deadline: float
    finish: float | None = None

    @property
    def met(self) -> bool:
        return self.finish is not None and self.finish <= self.deadline + 1e-12

    @property
    def response(self) -> float:
        assert self.finish is not None
        return self.finish - self.release


@dataclass
class ScheduleResult:
    """Outcome of a schedule simulation."""

    jobs: list[JobRecord]
    horizon: float
    policy: str

    @property
    def all_met(self) -> bool:
        return all(j.met for j in self.jobs)

    def worst_response(self, task: str) -> float:
        responses = [j.response for j in self.jobs if j.task == task and j.finish]
        return max(responses) if responses else 0.0


def simulate(
    tasks: list[PeriodicTask],
    policy: str = "rm",
    horizon: float | None = None,
) -> ScheduleResult:
    """Simulate a preemptive priority schedule of periodic tasks.

    Args:
        tasks: The task set; every job costs its task's WCET.
        policy: ``"rm"`` (static, period-ordered priorities) or ``"edf"``
            (dynamic, earliest absolute deadline first).
        horizon: Simulation length (default: one hyperperiod).

    Returns:
        Per-job records with finish times; deadline misses are recorded,
        not raised (callers assert what they expect).
    """
    if policy not in ("rm", "edf"):
        raise ValueError(f"unknown policy {policy!r}")
    if horizon is None:
        horizon = hyperperiod(tasks)

    # Job = [key, seq, remaining, record]; key orders the ready heap.
    ready: list[list] = []
    sequence = 0
    jobs: list[JobRecord] = []
    releases: list[tuple[float, int, PeriodicTask]] = []
    for i, task in enumerate(tasks):
        heapq.heappush(releases, (0.0, i, task))

    rm_priority = {
        t.name: rank
        for rank, t in enumerate(sorted(tasks, key=lambda t: t.period))
    }

    now = 0.0
    while True:
        # Release everything due now.
        while releases and releases[0][0] <= now + 1e-15:
            release_time, i, task = heapq.heappop(releases)
            if release_time >= horizon - 1e-15:
                continue
            record = JobRecord(
                task=task.name,
                release=release_time,
                deadline=release_time + task.effective_deadline,
            )
            jobs.append(record)
            key = (
                rm_priority[task.name]
                if policy == "rm"
                else record.deadline
            )
            sequence += 1
            heapq.heappush(ready, [key, sequence, task.wcet, record])
            next_release = release_time + task.period
            if next_release < horizon - 1e-15:
                heapq.heappush(releases, (next_release, i, task))

        if not ready:
            if not releases:
                break
            now = max(now, releases[0][0])
            continue

        # Run the highest-priority job until it finishes or a release.
        key, seq, remaining, record = heapq.heappop(ready)
        next_event = releases[0][0] if releases else math.inf
        slice_length = min(remaining, max(0.0, next_event - now))
        if slice_length <= 1e-15 and remaining > 0:
            # A release happens right now; requeue and process it first.
            heapq.heappush(ready, [key, seq, remaining, record])
            now = next_event
            continue
        now += slice_length
        remaining -= slice_length
        if remaining <= 1e-15:
            record.finish = now
        else:
            heapq.heappush(ready, [key, seq, remaining, record])

    return ScheduleResult(jobs=jobs, horizon=horizon, policy=policy)
