"""Task-set admission control: VISA's always-on query as a library call.

A client describes a periodic task set — per task a workload + scale
(the WCET comes from the analyzer, never from the client), a period, and
an optional constrained deadline — and asks: *can this set be admitted,
and under which speculation plan?*  The decision combines every layer
this repository already has:

* each task's WCET curve over the DVS table, from
  :class:`repro.wcet.analyzer.WCETAnalyzer` (or the bounded
  model-checking oracle when ``engine="mc"``) with measured D-cache
  padding — the same derivation as the service's ``wcet`` job kind;
* the recovery (fallback) frequency: the lowest DVS setting at which
  every task has a valid EQ 1 checkpoint plan *and* the whole set passes
  the policy's schedulability test (exact RM response-time analysis or
  the EDF utilization/density test from :mod:`repro.rt.sched`), with
  one mode-switch overhead charged per job;
* per-task checkpoint/watchdog plans (:mod:`repro.visa.checkpoints`)
  against that recovery frequency, counting at the speculative (top)
  frequency — EQ 4's PET-driven refinement happens at runtime, so
  admission fixes the conservative pair {f_spec = top, f_rec = lowest
  feasible};
* a discrete-event cross-check over one (capped) hyperperiod when the
  set is small enough to simulate;
* the SMT co-scheduling model (:mod:`repro.visa.smt`): with ``n``
  background threads at aggressiveness ``alpha``, the RT thread keeps a
  ``1 / (1 + alpha*n)`` bandwidth share; the decision reports whether
  speculation stays viable under that contention and what fraction of
  core bandwidth background work can harvest.

Determinism is the contract: :func:`decide` is a pure function of the
normalized payload, so its canonical-JSON digest is byte-identical
whether computed by the library (``repro admit``), a single daemon, or
any backend of a ``--cluster`` fleet — which is what makes fleet-wide
coalescing and the shared result store sound for this job kind.
"""

from __future__ import annotations

import hashlib
import json
import math
from functools import lru_cache
from typing import Any

from repro.errors import HyperperiodError, InfeasibleError, ProtocolError
from repro.rt.sched import (
    PeriodicTask,
    edf_schedulable,
    hyperperiod,
    rm_response_times,
    slack_fraction,
    utilization,
)
from repro.snapshot.state import FORMAT_VERSION, canonical_json

JSONDict = dict[str, Any]

#: Workload scales accepted (mirrors the service/CLI choices).
SCALES = ("tiny", "default", "paper")

#: Scheduling policies the admission test understands.
POLICIES = ("rm", "edf")

#: Most tasks per admission request.  Every task costs WCET analyses
#: over a binary search of the DVS table; eight bounds the worst case.
MAX_TASKS = 8

#: Largest simulated job count for the hyperperiod cross-check; bigger
#: sets still get the analytic verdict, just no simulation.
SIM_JOB_CAP = 10_000

#: Complex-over-simple speedup assumed for speculative execution time
#: (mirrors ``RuntimeConfig.aet_scale_ratio``; the OOO core retires the
#: same work in roughly a quarter of the in-order worst-case cycles).
AET_SCALE_RATIO = 4.0


# -- payload normalization -------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _positive_seconds(value: Any, what: str, upper: float) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be a number (seconds)",
    )
    seconds = float(value)
    _require(
        0.0 < seconds <= upper,
        f"{what} must be in (0, {upper:g}] seconds",
    )
    return seconds


def normalize_payload(payload: JSONDict) -> JSONDict:
    """Validate and canonicalize one ``admit`` payload.

    Fills defaults (task names, explicit deadlines, the environment's
    WCET engine) and rejects unknown fields and out-of-range values, so
    logically identical submissions are byte-identical — the service's
    coalesce digest and the decision cache both key on the result.
    Raises :class:`ProtocolError` on any violation.
    """
    from repro.wcet.mc import ENGINES, default_engine
    from repro.workloads.suite import EXTRA_WORKLOAD_NAMES, WORKLOAD_NAMES

    known_workloads = tuple(WORKLOAD_NAMES) + tuple(EXTRA_WORKLOAD_NAMES)
    allowed = {"tasks", "policy", "engine", "background_threads", "alpha"}
    extras = set(payload) - allowed
    _require(not extras, f"unknown payload fields: {sorted(extras)}")

    raw_tasks = payload.get("tasks")
    _require(
        isinstance(raw_tasks, list) and len(raw_tasks) > 0,
        "payload requires a non-empty 'tasks' list",
    )
    assert isinstance(raw_tasks, list)
    _require(
        len(raw_tasks) <= MAX_TASKS,
        f"at most {MAX_TASKS} tasks per admission request",
    )
    tasks: list[JSONDict] = []
    names: set[str] = set()
    for index, raw in enumerate(raw_tasks):
        _require(
            isinstance(raw, dict), f"tasks[{index}] must be a JSON object"
        )
        task_extras = set(raw) - {
            "name", "workload", "scale", "period", "deadline"
        }
        _require(
            not task_extras,
            f"tasks[{index}]: unknown fields {sorted(task_extras)}",
        )
        workload = raw.get("workload")
        _require(
            isinstance(workload, str) and workload in known_workloads,
            f"tasks[{index}]: unknown workload {workload!r}; "
            f"known: {list(known_workloads)}",
        )
        scale = raw.get("scale", "tiny")
        _require(
            scale in SCALES,
            f"tasks[{index}]: scale must be one of {list(SCALES)}",
        )
        name = raw.get("name", f"t{index}-{workload}")
        _require(
            isinstance(name, str) and 0 < len(name) <= 64,
            f"tasks[{index}]: name must be a non-empty string (<= 64 chars)",
        )
        _require(name not in names, f"duplicate task name {name!r}")
        names.add(name)
        period = _positive_seconds(
            raw.get("period"), f"tasks[{index}].period", 60.0
        )
        deadline = raw.get("deadline")
        if deadline is None:
            deadline_s = period
        else:
            deadline_s = _positive_seconds(
                deadline, f"tasks[{index}].deadline", 60.0
            )
            _require(
                deadline_s <= period,
                f"tasks[{index}]: deadline must not exceed the period",
            )
        tasks.append(
            {
                "name": str(name),
                "workload": str(workload),
                "scale": str(scale),
                "period": period,
                "deadline": deadline_s,
            }
        )

    policy = payload.get("policy", "rm")
    _require(
        policy in POLICIES, f"policy must be one of {list(POLICIES)}"
    )
    engine = payload.get("engine")
    if engine is None:
        engine = default_engine()
    _require(
        isinstance(engine, str) and engine in ENGINES,
        f"engine must be one of {list(ENGINES)}",
    )
    threads = payload.get("background_threads", 0)
    _require(
        isinstance(threads, int) and not isinstance(threads, bool),
        "background_threads must be an integer",
    )
    _require(
        0 <= int(threads) <= 8, "background_threads must be in [0, 8]"
    )
    alpha = payload.get("alpha", 1.0)
    _require(
        isinstance(alpha, (int, float)) and not isinstance(alpha, bool),
        "alpha must be a number",
    )
    _require(
        0.0 < float(alpha) <= 4.0, "alpha must be in (0, 4]"
    )
    return {
        "tasks": tasks,
        "policy": str(policy),
        "engine": str(engine),
        "background_threads": int(threads),
        "alpha": float(alpha),
    }


def task_set_digest(payload: JSONDict) -> str:
    """Digest of a *normalized* payload; the decision-cache key.

    Byte-identical to ``repro.service.jobs.coalesce_key("admit",
    payload)`` by construction (same canonical JSON, same format salt),
    so the library cache, the single-flight table, and the shared
    result store all key the same bytes — pinned by tests.
    """
    blob = canonical_json(
        {"format": FORMAT_VERSION, "kind": "admit", "payload": payload}
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


# -- WCET derivation -------------------------------------------------------------


@lru_cache(maxsize=64)
def _prepared(workload: str, scale: str) -> tuple[Any, tuple[int, ...]]:
    """Program + measured D-cache bounds for one workload (memoized)."""
    from repro.wcet.dcache_pad import measure_dcache_misses
    from repro.workloads import get_workload

    program = get_workload(workload, scale).program
    return program, tuple(measure_dcache_misses(program))


@lru_cache(maxsize=1024)
def _task_wcet(
    workload: str, scale: str, engine: str, freq_hz: float
) -> Any:
    """One task's :class:`TaskWCET` at one frequency (engine-pinned).

    Same derivation as the service's ``wcet`` job kind: the static
    timing-tree analyzer with measured D-cache padding, or the bounded
    model-checking oracle when ``engine="mc"``.  Memoized per process —
    the DVS search below probes O(log table) frequencies per task, and
    long-lived service workers amortize repeats across jobs.
    """
    from repro.wcet.analyzer import WCETAnalyzer

    program, bounds = _prepared(workload, scale)
    analyzer = WCETAnalyzer(program)
    analyzer.dcache_bounds = list(bounds)
    if engine == "mc":
        from repro.wcet.mc import ModelCheckEngine

        return ModelCheckEngine(analyzer).analyze(freq_hz)
    return analyzer.analyze(freq_hz)


# -- the decision ----------------------------------------------------------------


class _Evaluation:
    """Outcome of testing the task set against one recovery setting."""

    def __init__(self) -> None:
        self.feasible = False
        self.reason: str | None = None
        self.rtasks: list[PeriodicTask] = []
        self.wcets: list[Any] = []
        self.checkpoints: list[list[float]] = []


def _evaluate(
    tasks: list[JSONDict],
    policy: str,
    engine: str,
    rec_freq_hz: float,
    ovhd: float,
) -> _Evaluation:
    """Test one recovery frequency: per-task EQ 1 plans + the set test."""
    from repro.visa.checkpoints import checkpoint_times

    ev = _Evaluation()
    mhz = rec_freq_hz / 1e6
    for task in tasks:
        wcet = _task_wcet(
            task["workload"], task["scale"], engine, rec_freq_hz
        )
        demand = ovhd + wcet.total_seconds
        deadline = float(task["deadline"])
        if demand > deadline:
            ev.reason = (
                f"task {task['name']!r} needs {demand * 1e6:.2f} us "
                f"(WCET + switch overhead) against a "
                f"{deadline * 1e6:.2f} us deadline at {mhz:.0f} MHz"
            )
            return ev
        try:
            cps = checkpoint_times(deadline, ovhd, wcet)
        except InfeasibleError as exc:
            ev.reason = f"task {task['name']!r}: {exc}"
            return ev
        ev.rtasks.append(
            PeriodicTask(
                name=str(task["name"]),
                wcet=demand,
                period=float(task["period"]),
                deadline=deadline,
            )
        )
        ev.wcets.append(wcet)
        ev.checkpoints.append(cps)
    if policy == "rm":
        responses = rm_response_times(ev.rtasks)
        missed = [
            t.name
            for t in ev.rtasks
            if responses[t.name] > t.effective_deadline
        ]
        if missed:
            ev.reason = (
                f"RM response-time analysis fails at {mhz:.0f} MHz "
                f"recovery for: {', '.join(sorted(missed))}"
            )
            return ev
    else:
        if not edf_schedulable(ev.rtasks):
            ev.reason = (
                f"EDF density test fails at {mhz:.0f} MHz recovery "
                f"(density > 1)"
            )
            return ev
    ev.feasible = True
    return ev


def _simulation_check(
    rtasks: list[PeriodicTask], policy: str
) -> tuple[JSONDict | None, float | None, dict[str, float]]:
    """Discrete-event cross-check over one hyperperiod, when tractable.

    Returns ``(summary, hyperperiod_seconds, worst_responses)``; the
    summary and responses are empty when the hyperperiod blows the cap
    or the job count would be intractable (the analytic verdict stands
    alone — the decision records *that* it stands alone).
    """
    from repro.rt.simulate import simulate

    try:
        horizon = hyperperiod(rtasks)
    except HyperperiodError:
        return None, None, {}
    job_count = sum(math.ceil(horizon / t.period) for t in rtasks)
    if job_count > SIM_JOB_CAP:
        return None, horizon, {}
    result = simulate(rtasks, policy=policy, horizon=horizon)
    worst = {t.name: result.worst_response(t.name) for t in rtasks}
    summary: JSONDict = {
        "policy": policy,
        "jobs": len(result.jobs),
        "all_met": result.all_met,
    }
    return summary, horizon, worst


def _smt_report(
    payload: JSONDict,
    spec_freq_hz: float,
    checkpoints: list[list[float]] | None,
) -> JSONDict:
    """First-order SMT co-scheduling analysis (paper §1.1 / §8).

    The RT thread keeps a ``1/(1 + alpha*n)`` share of every bandwidth
    resource; its speculative execution time stretches by the inverse.
    Contention can only cause *checkpoint* misses — recovery idles the
    background threads and restores the full guarantee — so this report
    never gates admissibility; it predicts whether speculation (and so
    the power win) survives the co-schedule, and how much bandwidth the
    background threads can harvest.
    """
    threads = int(payload["background_threads"])
    alpha = float(payload["alpha"])
    rt_share = 1.0 / (1.0 + alpha * threads)
    spec_busy = 0.0
    viable = True
    for index, task in enumerate(payload["tasks"]):
        wcet_spec = _task_wcet(
            task["workload"], task["scale"], payload["engine"], spec_freq_hz
        )
        est_spec = wcet_spec.total_seconds / AET_SCALE_RATIO / rt_share
        spec_busy += est_spec / float(task["period"])
        if checkpoints is not None and est_spec > checkpoints[index][-1]:
            viable = False
    harvestable = spec_busy * (1.0 - rt_share) + max(0.0, 1.0 - spec_busy)
    return {
        "background_threads": threads,
        "alpha": alpha,
        "rt_share": rt_share,
        "spec_busy_fraction": min(1.0, spec_busy),
        "harvestable_share": max(0.0, min(1.0, harvestable)),
        "speculation_viable": viable if checkpoints is not None else None,
    }


def decide(payload: JSONDict) -> JSONDict:
    """The admission decision for one *normalized* payload.

    Pure and deterministic: equal payloads produce byte-identical
    decisions (and therefore equal ``digest`` fields) in any process.
    """
    from repro.experiments.common import OVHD
    from repro.visa.checkpoints import watchdog_increments
    from repro.visa.dvs import DVSTable

    tasks: list[JSONDict] = payload["tasks"]
    policy: str = payload["policy"]
    engine: str = payload["engine"]
    table = DVSTable.xscale()
    settings = list(table)
    spec = table.highest

    top = _evaluate(tasks, policy, engine, spec.freq_hz, OVHD)
    if not top.feasible:
        decision = _render(
            payload, admissible=False, reason=top.reason, spec=spec,
            rec=None, evaluation=top, responses={}, simulated=None,
            hyperperiod_s=None, ovhd=OVHD,
        )
        return _seal(payload, decision)

    # Lowest feasible recovery setting.  Feasibility is monotone in
    # frequency for every practical WCET curve (cycles shrink in
    # seconds as the clock rises), so a binary search suffices; its
    # invariant keeps ``hi`` verified-feasible, so even a non-monotone
    # curve yields a safe (merely suboptimal) setting.
    evaluations: dict[int, _Evaluation] = {len(settings) - 1: top}
    lo, hi = 0, len(settings) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        ev = _evaluate(tasks, policy, engine, settings[mid].freq_hz, OVHD)
        evaluations[mid] = ev
        if ev.feasible:
            hi = mid
        else:
            lo = mid + 1
    rec = settings[hi]
    chosen = evaluations[hi]

    simulated, horizon, worst = _simulation_check(chosen.rtasks, policy)
    responses: dict[str, float] = {}
    if policy == "rm":
        responses = rm_response_times(chosen.rtasks)
    elif worst:
        responses = worst

    plans: list[JSONDict] = []
    for index, task in enumerate(tasks):
        cps = chosen.checkpoints[index]
        plans.append(
            {
                "checkpoints": cps,
                "watchdog_increments": watchdog_increments(
                    cps, spec.freq_hz
                ),
            }
        )

    decision = _render(
        payload, admissible=True, reason=None, spec=spec, rec=rec,
        evaluation=chosen, responses=responses, simulated=simulated,
        hyperperiod_s=horizon, ovhd=OVHD, plans=plans,
    )
    return _seal(payload, decision)


def _render(
    payload: JSONDict,
    *,
    admissible: bool,
    reason: str | None,
    spec: Any,
    rec: Any,
    evaluation: _Evaluation,
    responses: dict[str, float],
    simulated: JSONDict | None,
    hyperperiod_s: float | None,
    ovhd: float,
    plans: list[JSONDict] | None = None,
) -> JSONDict:
    """Assemble the JSON decision (no digests yet)."""
    engine: str = payload["engine"]
    task_rows: list[JSONDict] = []
    for index, task in enumerate(payload["tasks"]):
        wcet_top = _task_wcet(
            task["workload"], task["scale"], engine, spec.freq_hz
        )
        row: JSONDict = {
            "name": task["name"],
            "workload": task["workload"],
            "scale": task["scale"],
            "period_seconds": float(task["period"]),
            "deadline_seconds": float(task["deadline"]),
            "subtasks": len(wcet_top.subtasks),
            "wcet_top_seconds": wcet_top.total_seconds,
        }
        if admissible and index < len(evaluation.rtasks):
            rtask = evaluation.rtasks[index]
            wcet_rec = evaluation.wcets[index]
            response = responses.get(rtask.name)
            finite = response is not None and math.isfinite(response)
            row.update(
                {
                    "wcet_rec_seconds": wcet_rec.total_seconds,
                    "demand_seconds": rtask.wcet,
                    "utilization": rtask.utilization,
                    "response_seconds": response if finite else None,
                    "slack_seconds": (
                        rtask.effective_deadline - response
                        if finite and response is not None
                        else rtask.effective_deadline - rtask.wcet
                    ),
                    "plan": plans[index] if plans is not None else None,
                }
            )
        else:
            row.update(
                {
                    "wcet_rec_seconds": None,
                    "demand_seconds": None,
                    "utilization": wcet_top.total_seconds
                    / float(task["period"]),
                    "response_seconds": None,
                    "slack_seconds": None,
                    "plan": None,
                }
            )
        task_rows.append(row)

    decision: JSONDict = {
        "admissible": admissible,
        "reason": reason,
        "policy": payload["policy"],
        "engine": engine,
        "ovhd_seconds": ovhd,
        "f_spec_mhz": spec.freq_hz / 1e6,
        "f_spec_volts": spec.volts,
        "f_rec_mhz": None if rec is None else rec.freq_hz / 1e6,
        "f_rec_volts": None if rec is None else rec.volts,
        "utilization": (
            utilization(evaluation.rtasks) if admissible else None
        ),
        "slack_fraction": (
            slack_fraction(evaluation.rtasks) if admissible else None
        ),
        "hyperperiod_seconds": hyperperiod_s,
        "simulated": simulated,
        "tasks": task_rows,
        "smt": _smt_report(
            payload,
            spec.freq_hz,
            evaluation.checkpoints if admissible else None,
        ),
    }
    return decision


def _seal(payload: JSONDict, decision: JSONDict) -> JSONDict:
    """Stamp the request and decision digests onto the decision."""
    decision["task_set_digest"] = task_set_digest(payload)
    blob = canonical_json({"format": FORMAT_VERSION, "decision": decision})
    decision["digest"] = hashlib.sha256(blob.encode()).hexdigest()[:24]
    return decision


# -- the digest-keyed decision cache ---------------------------------------------


def cached_decide(payload: JSONDict) -> JSONDict:
    """:func:`decide`, memoized on disk by task-set digest.

    Uses the runcache publication machinery (atomic canonical-JSON
    writes under :func:`repro.snapshot.runcache.cache_dir`, salted with
    the snapshot format version) so the CLI, service workers on the same
    cache volume, and repeated processes all share one entry per
    digest.  ``REPRO_NO_CACHE=1`` bypasses the disk layer.
    """
    from repro.snapshot import runcache

    if runcache.cache_disabled():
        return decide(payload)
    digest = task_set_digest(payload)
    path = runcache.cache_dir() / f"admit-{digest}.json"
    try:
        raw = json.loads(path.read_text())
        if (
            isinstance(raw, dict)
            and raw.get("format") == FORMAT_VERSION
            and isinstance(raw.get("decision"), dict)
            and raw["decision"].get("task_set_digest") == digest
        ):
            cached: JSONDict = raw["decision"]
            return cached
    except (OSError, ValueError):
        pass
    decision = decide(payload)
    runcache.atomic_write_json(
        path, {"format": FORMAT_VERSION, "decision": decision}
    )
    return decision


def admit(payload: JSONDict) -> JSONDict:
    """Normalize a raw payload and return its (cached) decision.

    The library-facing entry point: ``repro admit`` and direct callers
    go through here; the service normalizes at the daemon and calls
    :func:`cached_decide` in the worker — both paths hash and return
    identical bytes.
    """
    return cached_decide(normalize_payload(payload))


__all__ = [
    "AET_SCALE_RATIO",
    "MAX_TASKS",
    "POLICIES",
    "SCALES",
    "admit",
    "cached_decide",
    "decide",
    "normalize_payload",
    "task_set_digest",
]
