"""Classic schedulability analysis for periodic task sets.

Implements the admission tests of Liu & Layland (the paper's reference
[19]) plus exact rate-monotonic response-time analysis, over WCETs that
typically come from :class:`repro.wcet.analyzer.WCETAnalyzer`.

All times are in seconds.  Deadlines equal periods unless given.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import HyperperiodError

#: Default hyperperiod cap, as a multiple of the smallest period.  A
#: harmonic millisecond-to-second set sits near 1e3 and coprime-integer
#: millisecond periods near 1e5; only float periods that are coprime at
#: nanosecond resolution blow past this, and those LCMs are astronomical
#: (1e12+), not merely large — so the cap separates the two regimes with
#: orders of magnitude to spare on both sides.
HYPERPERIOD_MAX_RATIO = 1e6


@dataclass(frozen=True)
class PeriodicTask:
    """One periodic task.

    Attributes:
        name: Label for reports.
        wcet: Worst-case execution time per job, seconds.
        period: Activation period, seconds.
        deadline: Relative deadline (defaults to the period).
    """

    name: str
    wcet: float
    period: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise ValueError(f"{self.name}: wcet and period must be positive")
        if self.wcet > self.effective_deadline:
            raise ValueError(f"{self.name}: wcet exceeds its deadline")

    @property
    def effective_deadline(self) -> float:
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def utilization(tasks: list[PeriodicTask]) -> float:
    """Total processor utilization of the task set."""
    return sum(t.utilization for t in tasks)


def rm_utilization_bound(n: int) -> float:
    """Liu & Layland's sufficient RM bound: n(2^(1/n) - 1).

    >>> round(rm_utilization_bound(1), 3)
    1.0
    >>> round(rm_utilization_bound(2), 3)
    0.828
    """
    if n <= 0:
        raise ValueError("need at least one task")
    return n * (2 ** (1.0 / n) - 1.0)


def rm_response_times(tasks: list[PeriodicTask]) -> dict[str, float]:
    """Exact response-time analysis under rate-monotonic priorities.

    Tasks are prioritized by period (shorter = higher).  Returns the
    worst-case response time per task; a task whose response exceeds its
    deadline gets ``math.inf`` (iteration diverged past the deadline).
    Non-convergent iterations that stay below the deadline for 10,000
    rounds (arbitrarily long deadlines over an overloaded set) also
    report ``math.inf`` rather than whatever partial fixpoint the loop
    happened to reach.
    """
    ordered = sorted(tasks, key=lambda t: t.period)
    responses: dict[str, float] = {}
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        response = task.wcet
        converged = not higher
        for _ in range(10_000):
            interference = sum(
                math.ceil(response / h.period) * h.wcet for h in higher
            )
            updated = task.wcet + interference
            if abs(updated - response) < 1e-15:
                response = updated
                converged = True
                break
            response = updated
            if response > task.effective_deadline:
                response = math.inf
                converged = True
                break
        responses[task.name] = response if converged else math.inf
    return responses


def rm_schedulable(tasks: list[PeriodicTask]) -> bool:
    """Exact RM schedulability (response-time analysis)."""
    responses = rm_response_times(tasks)
    by_name = {t.name: t for t in tasks}
    return all(
        responses[name] <= by_name[name].effective_deadline
        for name in responses
    )


def edf_schedulable(tasks: list[PeriodicTask]) -> bool:
    """EDF test: U <= 1 is exact for implicit deadlines; for constrained
    deadlines use the density bound (sufficient)."""
    if all(t.deadline is None for t in tasks):
        return utilization(tasks) <= 1.0 + 1e-12
    density = sum(t.wcet / min(t.effective_deadline, t.period) for t in tasks)
    return density <= 1.0 + 1e-12


def hyperperiod(
    tasks: list[PeriodicTask],
    resolution: float = 1e-9,
    max_ratio: float | None = HYPERPERIOD_MAX_RATIO,
) -> float:
    """Least common multiple of the periods (at ``resolution`` granularity).

    Raises:
        HyperperiodError: when the LCM exceeds ``max_ratio`` times the
            smallest period — a pathological (near-coprime) period set
            whose hyperperiod no consumer can usefully iterate.  Pass
            ``max_ratio=None`` to disable the cap.
    """
    ticks = [Fraction(t.period).limit_denominator(int(1 / resolution))
             for t in tasks]
    lcm_num = 1
    for f in ticks:
        lcm_num = lcm_num * f.numerator // math.gcd(lcm_num, f.numerator)
    gcd_den = ticks[0].denominator
    for f in ticks[1:]:
        gcd_den = math.gcd(gcd_den, f.denominator)
    # Compare in exact integer arithmetic: the float quotient overflows
    # long before the cap check would reject it.
    min_period = min(t.period for t in tasks)
    if max_ratio is not None and lcm_num > max_ratio * min_period * gcd_den:
        raise HyperperiodError(
            f"hyperperiod exceeds {max_ratio:g}x the smallest period "
            f"({min_period:g} s): the periods are near-coprime at "
            f"{resolution:g} s resolution; raise max_ratio or pass an "
            f"explicit horizon"
        )
    return lcm_num / gcd_den


def slack_fraction(tasks: list[PeriodicTask]) -> float:
    """Fraction of processor time left for non-real-time work.

    This is the quantity VISA grows: replacing the simple pipeline's WCETs
    with the complex pipeline's (checkpoint-guarded) typical times shrinks
    utilization, and the freed slack goes to background threads (§1.1).
    """
    return max(0.0, 1.0 - utilization(tasks))
