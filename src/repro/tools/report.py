"""Run reports: summarize a VISA runtime sequence as readable text.

Turns a list of :class:`~repro.visa.runtime.TaskRun` into the summary a
systems engineer would want after a soak run: the frequency trajectory,
checkpoint misses, time-in-mode breakdown, and (optionally) energy by
power model.  Used by examples and handy in a REPL; the experiment
harness has its own more specific renderers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.power.model import PowerModel
from repro.power.report import energy_of_runs
from repro.visa.runtime import TaskRun


@dataclass
class RunSummary:
    """Aggregated view of a task-run sequence."""

    instances: int
    missed_checkpoints: int
    deadlines_met: bool
    final_f_spec_mhz: float
    final_f_rec_mhz: float
    frequency_trajectory_mhz: list[int]
    seconds_by_mode: dict[str, float]
    worst_completion_us: float
    mean_completion_us: float


def summarize(runs: list[TaskRun]) -> RunSummary:
    """Aggregate a run sequence (see :class:`RunSummary`)."""
    if not runs:
        raise ValueError("no runs to summarize")
    by_mode: dict[str, float] = defaultdict(float)
    for run in runs:
        for phase in run.phases:
            by_mode[phase.mode] += phase.seconds
    completions = [run.completion_seconds for run in runs]
    return RunSummary(
        instances=len(runs),
        missed_checkpoints=sum(r.mispredicted for r in runs),
        deadlines_met=all(r.deadline_met for r in runs),
        final_f_spec_mhz=runs[-1].f_spec.freq_hz / 1e6,
        final_f_rec_mhz=runs[-1].f_rec.freq_hz / 1e6,
        frequency_trajectory_mhz=[
            int(r.f_spec.freq_hz / 1e6) for r in runs
        ],
        seconds_by_mode=dict(by_mode),
        worst_completion_us=max(completions) * 1e6,
        mean_completion_us=sum(completions) / len(completions) * 1e6,
    )


def render(
    runs: list[TaskRun],
    title: str = "VISA run report",
    power_model: PowerModel | None = None,
) -> str:
    """Render a multi-section text report for a run sequence."""
    summary = summarize(runs)
    lines = [title, "=" * len(title)]
    lines.append(
        f"instances: {summary.instances}   missed checkpoints: "
        f"{summary.missed_checkpoints}   deadlines: "
        f"{'ALL MET' if summary.deadlines_met else 'MISSED (!)'}"
    )
    lines.append(
        f"final frequencies: f_spec {summary.final_f_spec_mhz:.0f} MHz, "
        f"f_rec {summary.final_f_rec_mhz:.0f} MHz"
    )
    lines.append(
        f"completion: mean {summary.mean_completion_us:.2f} us, "
        f"worst {summary.worst_completion_us:.2f} us "
        f"(deadline {runs[0].deadline * 1e6:.2f} us)"
    )

    trajectory = summary.frequency_trajectory_mhz
    stride = max(1, len(trajectory) // 16)
    shown = trajectory[::stride]
    lines.append("f_spec trajectory (MHz): " + " ".join(map(str, shown)))

    lines.append("time by mode:")
    total = sum(summary.seconds_by_mode.values()) or 1.0
    for mode, seconds in sorted(
        summary.seconds_by_mode.items(), key=lambda kv: -kv[1]
    ):
        lines.append(
            f"  {mode:13s} {seconds * 1e6:10.2f} us  "
            f"({100 * seconds / total:5.1f}%)"
        )

    if power_model is not None:
        report = energy_of_runs(runs, power_model)
        lines.append(
            f"energy: {report.energy_joules * 1e6:.2f} uJ over "
            f"{report.seconds * 1e6:.2f} us -> "
            f"{report.average_watts:.3f} W average"
        )
    return "\n".join(lines)
