"""Developer tooling: pipeline traces and timing reports."""

from repro.tools.report import RunSummary, render, summarize
from repro.tools.trace import PipelineTrace, trace_inorder

__all__ = [
    "PipelineTrace",
    "trace_inorder",
    "RunSummary",
    "render",
    "summarize",
]
