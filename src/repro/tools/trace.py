"""Cycle-by-cycle pipeline traces for the in-order (VISA) pipeline.

Renders the classic textbook pipeline diagram (one row per instruction,
one column per cycle) from the shared timing recurrence — handy both for
debugging the timing model and for teaching what the VISA actually
specifies: stalls show up as repeated stage letters.

    addi t0, zero, 5      F D R X M W
    lw   t1, 0(t0)        .F D R X M W
    add  t2, t1, t1       ..F D R r X M W     <- load-use stall in R
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.disassembler import disassemble_instruction
from repro.isa.program import Program
from repro.memory.machine import Machine
from repro.pipelines.inorder import InOrderCore
from repro.pipelines.inorder_engine import InstrTiming, TimingState, advance


@dataclass
class TraceRow:
    """Timing of one traced instruction."""

    index: int
    text: str
    timing: InstrTiming

    def stages(self) -> dict[int, str]:
        """cycle -> stage letter, with stalls shown lowercase."""
        t = self.timing
        out: dict[int, str] = {t.fetch: "F"}
        out[t.fetch + 1] = "D"
        for cycle in range(t.fetch + 2, t.ex_start):
            out[cycle] = "r"  # stalled in register read
        out.setdefault(t.ex_start - 1, "R")
        for cycle in range(t.ex_start, t.ex_end + 1):
            out[cycle] = "X"
        for cycle in range(t.mem_start, t.mem_end + 1):
            out[cycle] = "M"
        out[t.writeback] = "W"
        return out


@dataclass
class PipelineTrace:
    """A collected trace, renderable as a pipeline diagram."""

    rows: list[TraceRow] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return max((r.timing.writeback for r in self.rows), default=0) + 1

    def render(self, max_width: int = 100) -> str:
        if not self.rows:
            return "(empty trace)"
        first = min(r.timing.fetch for r in self.rows)
        last = min(self.cycles, first + max_width)
        label_width = max(len(r.text) for r in self.rows) + 2
        lines = []
        header = " " * label_width + "".join(
            f"{c % 10}" for c in range(first, last)
        )
        lines.append(header)
        for row in self.rows:
            stages = row.stages()
            cells = "".join(
                stages.get(cycle, ".") if cycle <= row.timing.writeback
                else " "
                for cycle in range(first, last)
            )
            lines.append(row.text.ljust(label_width) + cells)
        return "\n".join(lines)


def trace_inorder(
    program: Program,
    max_instructions: int = 64,
    machine: Machine | None = None,
    freq_hz: float = 1e9,
) -> PipelineTrace:
    """Execute up to ``max_instructions`` on the in-order core, tracing.

    Uses the real core (actual cache contents, actual branch outcomes);
    timings come from the same recurrence the core itself uses, captured
    via a shadow state advanced in lockstep.
    """
    machine = machine or Machine(program)
    core = InOrderCore(machine, freq_hz=freq_hz)
    trace = PipelineTrace()
    shadow = TimingState()
    stall = core.stall_cycles

    for index in range(max_instructions):
        if core.state.halted:
            break
        pc = core.state.pc
        inst = program.inst_at(pc)
        icache_hit = machine.icache.probe(pc)
        dcache_extra = 0
        # Probe the D-cache before the core mutates it.
        will_access = inst.is_mem
        addr_known = None
        if will_access:
            # Compute the effective address non-destructively.
            from repro.isa import layout
            from repro.isa.semantics import execute

            result = execute(inst, core.state.read_int, core.state.read_fp)
            addr_known = result.eff_addr
            if not layout.is_mmio(addr_known):
                if not machine.dcache.probe(addr_known):
                    dcache_extra = stall
        control_penalty = False
        if inst.is_branch:
            from repro.isa.semantics import execute

            outcome = execute(inst, core.state.read_int, core.state.read_fp)
            control_penalty = inst.is_backward_branch() != outcome.taken
        elif inst.is_indirect_jump:
            control_penalty = True

        timing = advance(
            shadow, inst, 0 if icache_hit else stall, dcache_extra,
            control_penalty,
        )
        trace.rows.append(
            TraceRow(index=index, text=disassemble_instruction(inst),
                     timing=timing)
        )
        core.run(max_instructions=1)
    return trace
