"""Simulation-state snapshot subsystem.

Deterministic, versioned capture/restore of the full simulation state —
machine (memory, caches, MMIO), core (registers, clock, counters,
predictors), PET histories, and the runtime's frequency/checkpoint
configuration — plus the two facilities built on top of it:

* :mod:`repro.snapshot.runcache` — run-level result cache memoizing
  whole ``VISARuntime.run()`` / ``SimpleFixedRuntime.run()`` outputs;
* :mod:`repro.snapshot.warmup` — warm-up prefix forking for experiment
  cells that share a bit-identical pre-flush prefix (Figure 4).

See :mod:`repro.snapshot.state` for the encoding contract and the
format-version salt that invalidates everything at once.
"""

from repro.snapshot.state import (
    FORMAT_VERSION,
    canonical_json,
    program_digest,
    snapshot_digest,
)

__all__ = [
    "FORMAT_VERSION",
    "canonical_json",
    "program_digest",
    "snapshot_digest",
]
