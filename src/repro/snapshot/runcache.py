"""Run-level result cache: memoized runtime ``run()`` outputs on disk.

A whole-run simulation is deterministic: the same program, runtime
configuration, DVS table, and flush set always produce the same
``TaskRun`` list.  This module caches those lists under the existing
``.repro_cache/`` directory so repeated figure/ablation invocations skip
the simulation entirely.

Key derivation (:func:`run_key`) covers every input the result depends
on — program digest, all ``RuntimeConfig`` fields, the DVS table's
operating points, the flush set, runtime kind plus any extras (D-cache
bounds, speculation policy) — and is salted with the snapshot
:data:`~repro.snapshot.state.FORMAT_VERSION`, so a layout change
invalidates every stored entry at once.

``REPRO_NO_CACHE=1`` (or the CLI's ``--no-cache``) bypasses loads *and*
stores; ``REPRO_CACHE_DIR`` relocates the directory.  Entries are
published atomically so parallel experiment workers may race on a key.
In-process :data:`STATS` counters make hits observable to tests and CI
smoke checks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from collections import Counter
from collections.abc import Iterator
from contextvars import ContextVar
from pathlib import Path

from repro.snapshot.state import FORMAT_VERSION, canonical_json, program_digest
from repro.visa.dvs import DVSTable, Setting
from repro.visa.runtime import Phase, RuntimeConfig, TaskRun

#: In-process observability: run-cache hits/misses/stores since import
#: (or the last :func:`reset_stats`).
STATS = Counter()


def reset_stats() -> None:
    """Zero the hit/miss/store counters (tests and benchmarks)."""
    STATS.clear()


def cache_dir() -> Path:
    """Directory for all on-disk caches (``REPRO_CACHE_DIR`` overrides)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


#: Context-local override for :func:`cache_disabled`.  ``None`` defers to
#: the ``REPRO_NO_CACHE`` environment variable; ``True``/``False`` wins
#: outright.  Being a :class:`~contextvars.ContextVar` (not plain module
#: state, and never ``os.environ``), concurrent in-process callers — the
#: service's asyncio tasks in particular — cannot race on it.
_NO_CACHE_OVERRIDE: ContextVar[bool | None] = ContextVar(
    "repro_no_cache_override", default=None
)


def cache_disabled() -> bool:
    """True when the disk caches should be bypassed.

    An explicit :func:`no_cache_override` (threaded down from the CLI's
    ``--no-cache`` or an API ``no_cache=`` parameter) takes precedence;
    the ``REPRO_NO_CACHE`` environment variable is only the default.
    """
    override = _NO_CACHE_OVERRIDE.get()
    if override is not None:
        return override
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")


@contextlib.contextmanager
def no_cache_override(value: bool | None) -> Iterator[None]:
    """Scope an explicit cache-bypass decision (``None`` = no opinion).

    Used by the experiment entry points to honor ``no_cache=`` without
    mutating global environment state that parallel in-process callers
    would race on; worker processes re-enter the override around each
    cell (see :func:`repro.experiments.parallel.parallel_map`).
    """
    token = _NO_CACHE_OVERRIDE.set(value)
    try:
        yield
    finally:
        _NO_CACHE_OVERRIDE.reset(token)


def atomic_write_json(path: Path, payload) -> None:
    """Best-effort atomic publish (concurrent workers may race on a key)."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            fh.write(canonical_json(payload))
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; the computed result is still returned


# -- key derivation -------------------------------------------------------------


def table_fields(table: DVSTable) -> list:
    """The DVS operating points as JSON-able ``[freq_hz, volts]`` pairs."""
    return [[s.freq_hz, s.volts] for s in table]


def run_key(
    kind: str,
    program,
    config: RuntimeConfig,
    table: DVSTable,
    flush_instances=frozenset(),
    extra: dict | None = None,
) -> str:
    """Cache key for one runtime's full run.

    Any field change — program digest, config, DVS table, flush set,
    extras, or the snapshot format version — yields a different key, which
    is how invalidation works: stale entries are simply never looked up
    again (``repro cache clear`` reclaims the space).
    """
    payload = {
        "format": FORMAT_VERSION,
        "kind": kind,
        "program": program_digest(program),
        "config": dataclasses.asdict(config),
        "table": table_fields(table),
        "flush": sorted(flush_instances),
        "extra": extra or {},
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:24]


# -- TaskRun (de)serialization ---------------------------------------------------


def _dump_setting(setting: Setting) -> list:
    return [setting.freq_hz, setting.volts]


def _load_setting(pair: list) -> Setting:
    return Setting(freq_hz=float(pair[0]), volts=float(pair[1]))


def serialize_runs(runs: list[TaskRun]) -> list:
    """JSON-able form of a ``TaskRun`` list (exact float round-trip)."""
    return [
        {
            "index": run.index,
            "phases": [
                {
                    "kind": phase.kind,
                    "mode": phase.mode,
                    "freq_hz": phase.freq_hz,
                    "volts": phase.volts,
                    "cycles": phase.cycles,
                    "seconds": phase.seconds,
                    "counters": {
                        k: phase.counters[k] for k in sorted(phase.counters)
                    },
                }
                for phase in run.phases
            ],
            "mispredicted": run.mispredicted,
            "completion_seconds": run.completion_seconds,
            "deadline": run.deadline,
            "f_spec": _dump_setting(run.f_spec),
            "f_rec": _dump_setting(run.f_rec),
        }
        for run in runs
    ]


def deserialize_runs(payload: list) -> list[TaskRun]:
    """Inverse of :func:`serialize_runs`; results compare ``==`` to originals."""
    return [
        TaskRun(
            index=int(entry["index"]),
            phases=[
                Phase(
                    kind=str(p["kind"]),
                    mode=str(p["mode"]),
                    freq_hz=float(p["freq_hz"]),
                    volts=float(p["volts"]),
                    cycles=int(p["cycles"]),
                    seconds=float(p["seconds"]),
                    counters=Counter(
                        {str(k): int(v) for k, v in p["counters"].items()}
                    ),
                )
                for p in entry["phases"]
            ],
            mispredicted=bool(entry["mispredicted"]),
            completion_seconds=float(entry["completion_seconds"]),
            deadline=float(entry["deadline"]),
            f_spec=_load_setting(entry["f_spec"]),
            f_rec=_load_setting(entry["f_rec"]),
        )
        for entry in payload
    ]


# -- load/store -----------------------------------------------------------------


def _run_path(name: str, key: str) -> Path:
    return cache_dir() / f"run-{name}-{key}.json"


def load_runs(name: str, key: str) -> list[TaskRun] | None:
    """Cached run for ``key``, or None on miss/bypass/corruption."""
    if cache_disabled():
        return None
    try:
        payload = json.loads(_run_path(name, key).read_text())
        runs = deserialize_runs(payload["runs"])
    except (OSError, ValueError, KeyError, TypeError):
        STATS["misses"] += 1
        return None
    STATS["hits"] += 1
    return runs


def store_runs(name: str, key: str, runs: list[TaskRun]) -> None:
    """Publish a computed run under ``key`` (no-op when caching is off)."""
    if cache_disabled():
        return
    atomic_write_json(
        _run_path(name, key),
        {"format": FORMAT_VERSION, "runs": serialize_runs(runs)},
    )
    STATS["stores"] += 1


# -- CLI support ----------------------------------------------------------------


def cache_entries() -> list[tuple[str, int]]:
    """``(filename, bytes)`` for every cache entry, largest first."""
    directory = cache_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in directory.iterdir():
        if path.is_file() and path.suffix in (".json", ".tmp"):
            try:
                entries.append((path.name, path.stat().st_size))
            except OSError:
                continue
    entries.sort(key=lambda e: (-e[1], e[0]))
    return entries


def cache_stats() -> dict:
    """One collector for every cache-observability surface.

    Combines the on-disk view (entry count, total bytes) with the
    in-process :data:`STATS` hit/miss/store counters.  ``repro cache
    stats`` renders this directly and the service's metrics endpoint
    feeds its gauges from the same function, so the two always agree.
    The nested ``blockjit`` dict covers the generated-code cache under
    ``blockjit/`` the same way (see :mod:`repro.isa.blockjit`).
    """
    from repro.isa import blockjit

    entries = cache_entries()
    return {
        "directory": str(cache_dir()),
        "entries": len(entries),
        "bytes": sum(size for _, size in entries),
        "hits": int(STATS["hits"]),
        "misses": int(STATS["misses"]),
        "stores": int(STATS["stores"]),
        "blockjit": blockjit.disk_cache_stats(),
    }


def clear_cache() -> tuple[int, int]:
    """Delete every cache entry (run caches *and* the ``blockjit/``
    codegen cache); returns ``(files_removed, bytes_freed)``."""
    from repro.isa import blockjit

    removed = freed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.iterdir():
            if path.is_file() and path.suffix in (".json", ".tmp"):
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                freed += size
    jit_removed, jit_freed = blockjit.clear_disk_cache()
    return removed + jit_removed, freed + jit_freed
