"""Warm-up prefix forking: simulate the shared pre-flush prefix once.

Figure 4 runs the same (benchmark, deadline) cell at several flush rates,
and every flush set lives entirely inside the steady-state window — the
warm-up prefix (instances ``[0, warm_start)``) is bit-identical across
rates.  This module simulates that prefix once, snapshots the full
runtime state (machine, core, predictors, PET histories, frequency pair,
checkpoint plan), and *forks* each rate's cell from the snapshot, cutting
the simulated instance count by roughly a third for the standard four
rates.  A differential test (``tests/test_snapshot.py``) proves forked
runs equal cold runs bit for bit.

Prefix payloads are shared two ways:

* in-process (:data:`_MEMORY`), covering serial sweeps where all rates of
  a benchmark run in one process — this is computation restructuring, not
  a cache, so it stays on even under ``REPRO_NO_CACHE=1``;
* on disk under the shared cache directory, covering process-parallel
  sweeps and repeated invocations — bypassed by ``REPRO_NO_CACHE=1`` like
  every other disk cache.

Every fork restores from the *serialized* payload (never from a live
runtime), so the snapshot/restore path is exercised on each use and cells
stay independent.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Callable

from repro.errors import SnapshotError
from repro.snapshot import runcache
from repro.snapshot.state import FORMAT_VERSION

#: In-process prefix payloads, keyed like the disk entries.
_MEMORY: dict[str, dict] = {}

#: In-process observability: prefix reuse vs. fresh simulation.
STATS = Counter()


def clear_memory_cache() -> None:
    """Drop in-process prefix payloads (tests and benchmarks)."""
    _MEMORY.clear()
    STATS.clear()


def forkable(flush_instances, warm_start: int | None, instances: int) -> bool:
    """True when instances ``[0, warm_start)`` are flush-free and non-empty.

    A prefix is only shareable if no flush lands inside it — otherwise the
    'shared' warm-up would differ between rates.
    """
    if warm_start is None or not 0 < warm_start < instances:
        return False
    return all(i >= warm_start for i in flush_instances)


def _warmup_path(name: str, key: str):
    return runcache.cache_dir() / f"warmup-{name}-{key}.json"


def warm_runtime(
    name: str,
    kind: str,
    make: Callable,
    program,
    config,
    table,
    warm_start: int,
    extra: dict | None = None,
) -> tuple[object, list]:
    """A runtime advanced past the warm-up prefix, plus the prefix's runs.

    ``make`` builds a fresh runtime positioned at instance 0.  On a prefix
    hit the runtime is restored from the stored snapshot; on a miss the
    prefix is simulated and its snapshot published.  Either way the caller
    receives a runtime ready to execute instance ``warm_start`` and the
    ``TaskRun`` list for instances ``[0, warm_start)``.
    """
    key = runcache.run_key(
        kind + "-warmup",
        program,
        config,
        table,
        frozenset(),
        {**(extra or {}), "warm_start": warm_start},
    )
    payload = _MEMORY.get(key)
    if payload is None and not runcache.cache_disabled():
        try:
            payload = json.loads(_warmup_path(name, key).read_text())
        except (OSError, ValueError):
            payload = None
    if payload is not None:
        runtime = make()
        try:
            if payload.get("format") != FORMAT_VERSION:
                raise SnapshotError("warm-up prefix format version mismatch")
            runtime.restore_state(payload["state"])
            runs = runcache.deserialize_runs(payload["runs"])
        except (SnapshotError, KeyError, ValueError, TypeError):
            payload = None  # corrupt/stale: fall through and recompute
        else:
            STATS["reused"] += 1
            _MEMORY[key] = payload
            return runtime, runs

    runtime = make()
    runs = runtime.run_span(0, warm_start)
    payload = {
        "format": FORMAT_VERSION,
        "state": runtime.snapshot_state(),
        "runs": runcache.serialize_runs(runs),
    }
    _MEMORY[key] = payload
    if not runcache.cache_disabled():
        runcache.atomic_write_json(_warmup_path(name, key), payload)
    STATS["simulated"] += 1
    return runtime, runs
