"""Canonical snapshot encoding: format version, digests, program identity.

Every component of the simulation dumps to plain JSON-able data (dicts
with string keys, lists, ints, floats, bools) through its own
``dump_state``/``load_state`` pair; this module defines the *encoding
contract* those payloads share:

* a single :data:`FORMAT_VERSION` that salts every digest and cache key —
  bump it whenever any component changes its dump layout, and every
  on-disk snapshot and run-cache entry invalidates at once;
* :func:`canonical_json` — the one serialization used for hashing and
  storage (sorted keys, no whitespace), so identical state always yields
  identical bytes;
* :func:`snapshot_digest` — a stable content digest of any payload;
* :func:`program_digest` — identity of a compiled program (words, data
  image, loop bounds, sub-task marks), the root of run-cache keys.

Floats round-trip exactly through :mod:`json` (``repr``-based encoding),
so dumping and reloading never perturbs simulated timing.
"""

from __future__ import annotations

import hashlib
import json

#: Version salt for the snapshot layout *and* everything keyed on it
#: (run-cache entries, warm-up prefix snapshots).  Bump on any change to
#: a ``dump_state`` payload or to the run/warm-up key derivation.
FORMAT_VERSION = 1


def canonical_json(payload) -> str:
    """The canonical byte representation of a JSON-able payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def snapshot_digest(payload) -> str:
    """Stable content digest (first 16 hex chars of SHA-256)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


def program_digest(program) -> str:
    """Digest of everything simulation results depend on in a program."""
    payload = repr((
        FORMAT_VERSION,
        program.words,
        sorted(program.data.items()),
        sorted(program.loop_bounds.items()),
        sorted(program.subtask_marks.items()),
        program.text_base,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
