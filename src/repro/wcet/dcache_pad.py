"""Worst-case D-cache padding from dynamic traces (paper §3.3).

The paper's static D-cache module was not integrated with the modified
timing analyzer; instead, "data cache misses are modeled by manually
padding WCET based on data cache miss information from the dynamic trace".
This module automates exactly that: run the benchmark on the simple core
over several calibration inputs, record the worst per-sub-task D-cache
miss count from a cold cache, and apply a configurable safety margin.

For the C-lab kernels the data access *pattern* is input-independent
(fixed array sweeps), so the cold-cache miss count is constant across
inputs and the margin only guards genuinely data-dependent indexing
(adpcm's step-table walk).  The test suite validates the resulting bound
against thousands of random instances.
"""

from __future__ import annotations

import math

from repro.memory.machine import Machine
from repro.pipelines.inorder import InOrderCore
from repro.workloads.base import Workload


def measure_dcache_misses(program, prepare=None) -> list[int]:
    """Per-sub-task D-cache miss counts for one cold execution.

    Args:
        program: The program to trace.
        prepare: Optional callback receiving the fresh :class:`Machine`
            (e.g. to load inputs) before the run.

    Returns:
        One miss count per sub-task (a single entry for unmarked programs).
    """
    marks = program.subtask_boundaries()
    num = max(1, program.num_subtasks)
    breakpoints = frozenset(marks[1:]) if len(marks) > 1 else frozenset()
    machine = Machine(program)
    if prepare is not None:
        prepare(machine)
    core = InOrderCore(machine, freq_hz=1e9)
    counts = [0] * num
    for index in range(num):
        before = machine.dcache.stats.misses
        result = core.run(break_addrs=breakpoints)
        counts[index] = machine.dcache.stats.misses - before
        if result.reason == "halt":
            if index != num - 1:
                raise RuntimeError(f"halted in sub-task {index} of {num}")
            break
    return counts


def calibrate_dcache_bounds(
    workload: Workload,
    seeds: int = 5,
    margin: float = 1.25,
    slack: int = 4,
) -> list[int]:
    """Per-sub-task worst-case D-cache miss bounds for a workload.

    Args:
        workload: The benchmark to calibrate.
        seeds: Number of random calibration inputs (each from a cold cache).
        margin: Multiplicative safety factor on the observed maximum.
        slack: Additive safety misses per sub-task.

    Returns:
        One miss bound per sub-task, ready for
        :attr:`repro.wcet.analyzer.WCETAnalyzer.dcache_bounds`.
    """
    program = workload.program
    num = max(1, program.num_subtasks)
    worst = [0] * num
    for seed in range(seeds):
        def prepare(machine, seed=seed):
            workload.apply_inputs(machine, workload.generate_inputs(seed))

        observed = measure_dcache_misses(program, prepare)
        worst = [max(w, o) for w, o in zip(worst, observed)]
    return [math.ceil(w * margin) + slack for w in worst]
