"""Static instruction-cache analysis (paper §3.3, Table 2).

For each analysis scope (sub-task region, loop, function) we compute the
set of cache blocks its instructions occupy — including all transitively
called functions — and classify each block:

* **always hit (h)** — the block is guaranteed resident (a previous
  reference in the same scope loaded it and it cannot have been evicted).
* **first miss (fm)** — the block is *persistent* in the scope: once
  loaded it cannot be evicted, so it misses at most once per scope entry.
  A block is persistent when the number of distinct blocks in the scope
  mapping to its cache set does not exceed the associativity (a standard
  sound persistence criterion for LRU).
* **always miss (m)** — the block may be evicted between references
  (conflicting blocks exceed the associativity); every reference is
  charged a miss.
* **first hit (fh)** — guaranteed resident on first reference but not
  after; our conservative treatment folds this case into *always miss*
  (strictly safe, and immaterial for code footprints far below the cache
  capacity, as in the C-lab suite).

The timing analyzer charges each ``fm`` block one miss at the entry of the
outermost scope where it is persistent, and treats its references as hits
inside; ``m`` blocks are charged at every cache-block transition along a
path (see :mod:`repro.wcet.pipeline_model`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.memory.cache import CacheConfig

#: Table 2 category labels.
ALWAYS_MISS = "m"
ALWAYS_HIT = "h"
FIRST_MISS = "fm"
FIRST_HIT = "fh"


def blocks_of_addresses(addrs, config: CacheConfig) -> set[int]:
    """Cache-block numbers covering the given instruction addresses."""
    shift = config.block_shift
    return {addr >> shift for addr in addrs}


def persistent_blocks(blocks: set[int], config: CacheConfig) -> set[int]:
    """Blocks of the scope guaranteed to stay resident once loaded.

    A block survives if its cache set receives at most ``assoc`` distinct
    blocks from within the scope (LRU can then never evict it).
    """
    per_set: dict[int, list[int]] = defaultdict(list)
    for block in blocks:
        per_set[block % config.num_sets].append(block)
    persistent: set[int] = set()
    for members in per_set.values():
        if len(members) <= config.assoc:
            persistent.update(members)
    return persistent


@dataclass
class ScopeCacheInfo:
    """I-cache facts for one analysis scope."""

    blocks: set[int]
    persistent: set[int]

    def categorize(self, block: int, already_covered: set[int]) -> str:
        """Table 2 category of a reference to ``block`` within this scope.

        Args:
            block: Cache-block number of the reference.
            already_covered: Blocks charged as persistent by an enclosing
                scope (their first miss happened at the outer entry).
        """
        if block in already_covered:
            return ALWAYS_HIT
        if block in self.persistent:
            return FIRST_MISS
        return ALWAYS_MISS


def scope_info(addrs, config: CacheConfig) -> ScopeCacheInfo:
    """Build :class:`ScopeCacheInfo` for a set of instruction addresses."""
    blocks = blocks_of_addresses(addrs, config)
    return ScopeCacheInfo(blocks=blocks, persistent=persistent_blocks(blocks, config))
