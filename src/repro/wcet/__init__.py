"""Static worst-case execution time analysis for the VISA pipeline.

This package reimplements the structure of the paper's timing-analysis
toolset (Figure 1, §3.3):

* control-flow graph construction from the binary (:mod:`repro.wcet.cfg`),
* loop analysis with user loop bounds (:mod:`repro.wcet.loops`),
* static I-cache analysis producing Table 2 categorizations
  (:mod:`repro.wcet.icache_static`),
* a VISA pipeline model that *shares the timing recurrence* with the
  dynamic simulator (:mod:`repro.wcet.pipeline_model`),
* a bottom-up fix-point timing tree with per-sub-task WCETs
  (:mod:`repro.wcet.analyzer`), and
* trace-based worst-case D-cache padding (:mod:`repro.wcet.dcache_pad`),
  mirroring the paper's interim approach to data caches, and
* static D-cache analysis (:mod:`repro.wcet.dcache_static`) — the paper's
  stated future work, implemented: sound input-independent miss bounds.

The headline safety invariant — WCET >= actual execution time on the
simple pipeline — is exercised extensively by the test suite.
"""

from repro.wcet.analyzer import SubtaskWCET, TaskWCET, WCETAnalyzer

__all__ = ["WCETAnalyzer", "TaskWCET", "SubtaskWCET"]
