"""Concrete-value tracking for the model-checking WCET engine.

The engine explores real program paths, so it carries an *exact partial*
architectural state: every register and memory word is either **known**
(one concrete value, identical on every execution reaching this point
regardless of task inputs) or **unknown**.  The starting point mirrors
:class:`repro.pipelines.state.CoreState` — registers are architecturally
zeroed (``sp`` = stack top) — while data memory starts fully unknown,
because task inputs are written into the data segment before the run and
a sound bound must hold for *every* input.

Unknown is always a safe direction: dropping knowledge can only make the
engine evaluate a branch as "either way" (exploring both edges) or a
loop exit as "maybe" (running to the declared bound), never skip a path
the hardware could take.  That is the whole soundness story of this
module; precision is what the exactness buys on the workloads' abundant
input-independent control flow (counted loops, init sweeps).

Functional semantics are *shared* with both pipeline simulators via
:func:`repro.isa.semantics.execute`; only the unknown-propagation shell
lives here, so the oracle cannot drift from the cores architecturally.

Aliasing rule: a store whose address is unknown conservatively forgets
**all** known memory (it could alias any word).  No memory-layout
assumption is made — minicc keeps scalars in registers, so this rarely
costs precision in practice.
"""

from __future__ import annotations

from typing import Union

from repro.errors import SimulationError
from repro.isa import layout
from repro.isa.instruction import Instruction, RegRef
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, RA, SP
from repro.isa.semantics import execute, to_u32

#: A known concrete value (integer registers/words or FP doubles).
Value = Union[int, float]

#: Hashable fingerprint of the known architectural facts.
ValueDigest = tuple[
    tuple[tuple[int, int], ...],
    tuple[tuple[int, float], ...],
    tuple[tuple[int, Value], ...],
]


class _Unknown(Exception):
    """Raised by register-read callbacks when the value is not tracked."""


class ValueStore:
    """Exact partial architectural state (known registers and memory).

    Registers and memory words are dicts keyed by register number /
    word address; **absence means unknown**.  ``r0`` is pinned to zero
    like the hardware.
    """

    __slots__ = ("int_regs", "fp_regs", "memory")

    def __init__(
        self,
        int_regs: dict[int, int],
        fp_regs: dict[int, float],
        memory: dict[int, Value],
    ) -> None:
        self.int_regs = int_regs
        self.fp_regs = fp_regs
        self.memory = memory

    @classmethod
    def initial(cls) -> "ValueStore":
        """The architectural reset state (mirrors ``CoreState``):
        all registers known-zero, ``sp`` at the stack top, memory unknown.
        """
        int_regs = {n: 0 for n in range(NUM_INT_REGS)}
        int_regs[SP] = layout.STACK_TOP
        fp_regs = {n: 0.0 for n in range(NUM_FP_REGS)}
        return cls(int_regs, fp_regs, {})

    def clone(self) -> "ValueStore":
        return ValueStore(
            dict(self.int_regs), dict(self.fp_regs), dict(self.memory)
        )

    # -- register access ---------------------------------------------------------

    def _read_int(self, num: int) -> int:
        try:
            return self.int_regs[num]
        except KeyError:
            raise _Unknown from None

    def _read_fp(self, num: int) -> float:
        try:
            return self.fp_regs[num]
        except KeyError:
            raise _Unknown from None

    def _write(self, ref: RegRef | None, value: Value | None) -> None:
        """Set a register to a known value, or forget it (``None``)."""
        if ref is None:
            return
        bank, num = ref
        if bank == "i":
            if num == 0:
                return  # r0 ignores writes
            if value is None:
                self.int_regs.pop(num, None)
            else:
                self.int_regs[num] = int(value)
        else:
            if value is None:
                self.fp_regs.pop(num, None)
            else:
                self.fp_regs[num] = float(value)

    # -- instruction semantics ----------------------------------------------------

    def eval_branch(self, inst: Instruction) -> bool | None:
        """Branch outcome: True/False when decidable, None when unknown."""
        try:
            result = execute(inst, self._read_int, self._read_fp)
        except _Unknown:
            return None
        return result.taken

    def apply(self, inst: Instruction) -> None:
        """Update the store for one non-branch instruction.

        Control flow is the engine's job (the CFG encodes targets);
        branches go through :meth:`eval_branch` instead.
        """
        op = inst.op
        if op is Op.JAL:
            assert inst.addr is not None
            self._write(("i", RA), inst.addr + 4)
            return
        if op in (Op.J, Op.JR, Op.HALT) or inst.is_branch:
            return
        if inst.is_load:
            self._apply_load(inst)
            return
        if inst.is_store:
            self._apply_store(inst)
            return
        try:
            result = execute(inst, self._read_int, self._read_fp)
            value: Value | None = result.value  # type: ignore[assignment]
        except (_Unknown, SimulationError):
            # Unknown operand, or a fault (div by zero) that only a path
            # with imprecise values can reach: forget the destination.
            value = None
        self._write(inst.dest, value)

    def _effective_addr(self, inst: Instruction) -> int | None:
        base = self.int_regs.get(inst.rs)
        if base is None:
            return None
        return to_u32(base + inst.imm)

    def _apply_load(self, inst: Instruction) -> None:
        addr = self._effective_addr(inst)
        if addr is None or layout.is_mmio(addr):
            # Unknown address, or a device register (cycle counter,
            # watchdog): the loaded value is execution-dependent.
            self._write(inst.dest, None)
            return
        self._write(inst.dest, self.memory.get(addr))

    def _apply_store(self, inst: Instruction) -> None:
        addr = self._effective_addr(inst)
        if addr is None:
            # Could alias any tracked word: forget all known memory.
            self.memory.clear()
            return
        if layout.is_mmio(addr):
            return  # device writes don't touch memory
        bank = "f" if inst.op is Op.FSW else "i"
        value: Value | None
        if bank == "i":
            value = self.int_regs.get(inst.rt)
        else:
            value = self.fp_regs.get(inst.rt)
        if value is None:
            self.memory.pop(addr, None)
        else:
            self.memory[addr] = value

    # -- merging and digests -------------------------------------------------------

    def intersect(self, other: "ValueStore") -> None:
        """Keep only facts on which both stores agree (sound join)."""
        for mine, theirs in (
            (self.int_regs, other.int_regs),
            (self.fp_regs, other.fp_regs),
            (self.memory, other.memory),
        ):
            for key in [k for k, v in mine.items() if theirs.get(k) != v]:
                del mine[key]  # type: ignore[arg-type]

    def digest(self, relevant: frozenset[RegRef] | None = None) -> ValueDigest:
        """Hashable fingerprint of the tracked facts.

        Args:
            relevant: When given (from the branch-relevance slice,
                :mod:`repro.wcet.mc.slicing`), only registers that can
                still influence control flow enter the digest, so states
                that differ in dead values merge.  Memory is always
                digested in full (aliasing makes a sound memory slice
                coarse, and tracked memory is sparse).
        """
        if relevant is None:
            ints = tuple(sorted(self.int_regs.items()))
            fps = tuple(sorted(self.fp_regs.items()))
        else:
            ints = tuple(
                (n, v)
                for n, v in sorted(self.int_regs.items())
                if ("i", n) in relevant
            )
            fps = tuple(
                (n, v)
                for n, v in sorted(self.fp_regs.items())
                if ("f", n) in relevant
            )
        return (ints, fps, tuple(sorted(self.memory.items())))
