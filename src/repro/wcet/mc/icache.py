"""Exact per-path instruction-cache model for the MC engine.

Where the static analyzer classifies blocks by *persistence* (first-miss
charges at scope entry, :mod:`repro.wcet.icache_static`), the
model-checking engine simply carries the true cache contents along every
explored path: a set-associative, true-LRU tag store identical in
behaviour to the dynamic :class:`repro.memory.cache.Cache` (per-set MRU
recency order; the dynamic model's global stamp counter induces exactly
the per-set order kept here).

Digest canonicalization: for any cache set whose *program footprint*
(distinct text blocks mapping to it) fits within the associativity, no
program fetch can ever evict a line, so the LRU order within the set is
behaviourally irrelevant — the digest uses an order-free ``frozenset``
there, letting states that fetched the same blocks in different orders
merge.  This is an exactness-preserving canonicalization, not an
approximation; overflowing sets (footprint > associativity) keep their
exact MRU order in the digest.  With Table 1 geometry (256 sets, 4-way)
and the C-lab code footprints, essentially every set is order-free.

``join`` (used only when the engine widens an over-full state set) keeps
the per-set *intersection* of contents with worst-case recency, which can
only add future misses — sound for an upper timing bound.
"""

from __future__ import annotations

from typing import Iterable

from repro.memory.cache import CacheConfig

#: Digest of one cache: per-set contents, order-free where provably
#: eviction-free, exact MRU-first order elsewhere.
ICacheDigest = tuple[tuple[int, frozenset[int] | tuple[int, ...]], ...]


def orderfree_sets(
    text_addrs: Iterable[int], config: CacheConfig
) -> frozenset[int]:
    """Cache-set indices where the program's footprint cannot overflow.

    A set with at most ``assoc`` distinct program blocks never evicts
    (instruction fetch is the only traffic into the I-cache), so LRU
    order within it is irrelevant to all future hit/miss outcomes.
    """
    shift = config.block_shift
    num_sets = config.num_sets
    per_set: dict[int, set[int]] = {}
    for addr in text_addrs:
        block = addr >> shift
        per_set.setdefault(block % num_sets, set()).add(block)
    return frozenset(
        index
        for index, blocks in per_set.items()
        if len(blocks) <= config.assoc
    )


class ExactICache:
    """Exact LRU tag store for one explored path.

    Sets are kept sparsely as MRU-first tuples (most programs touch a
    handful of the 256 sets).  Tuples make :meth:`clone` an O(sets)
    shallow dict copy.
    """

    __slots__ = ("sets", "num_sets", "assoc")

    def __init__(
        self,
        config: CacheConfig,
        sets: dict[int, tuple[int, ...]] | None = None,
    ) -> None:
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.sets: dict[int, tuple[int, ...]] = {} if sets is None else sets

    def clone(self) -> "ExactICache":
        other = ExactICache.__new__(ExactICache)
        other.num_sets = self.num_sets
        other.assoc = self.assoc
        other.sets = dict(self.sets)
        return other

    def access(self, block: int) -> bool:
        """Reference ``block``; fill/promote like the dynamic cache.

        Returns:
            True on a hit, False on a miss.
        """
        index = block % self.num_sets
        way = self.sets.get(index, ())
        if way and way[0] == block:
            return True  # already MRU (the common straight-line case)
        if block in way:
            self.sets[index] = (block,) + tuple(b for b in way if b != block)
            return True
        self.sets[index] = ((block,) + way)[: self.assoc]
        return False

    def digest(self, orderfree: frozenset[int]) -> ICacheDigest:
        """Canonical fingerprint (see module docstring)."""
        return tuple(
            (index, frozenset(way) if index in orderfree else way)
            for index, way in sorted(self.sets.items())
        )

    def join(self, other: "ExactICache") -> None:
        """Widen with ``other``: per-set intersection, worst recency.

        Surviving blocks take the *older* (closer-to-eviction) of their
        two positions, so the joined cache never promises more future
        hits than either input — any extra misses only increase the
        bound.
        """
        for index in list(self.sets):
            mine = self.sets[index]
            theirs = other.sets.get(index, ())
            common = [b for b in mine if b in theirs]
            if not common:
                del self.sets[index]
                continue
            common.sort(key=lambda b: max(mine.index(b), theirs.index(b)))
            self.sets[index] = tuple(common)
