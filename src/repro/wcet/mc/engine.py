"""Bounded model-checking WCET engine (differential soundness oracle).

Exhaustively explores the reachable ``ProgramCFG`` × pipeline-recurrence
state space — the technique of Becker et al. (arXiv 1802.09239) and
Béchennec/Cassez (arXiv 1105.1633), specialized to the VISA pipeline:

* **per-path timing**: every explored path threads the *same* in-order
  recurrence as the dynamic simulator and the static analyzer
  (:func:`repro.pipelines.inorder_engine.advance`), so the three can
  only differ in their inputs, never their pipeline model;
* **exact I-cache**: true LRU contents per path
  (:mod:`repro.wcet.mc.icache`) instead of persistence classification;
* **exact loop unrolling**: loops run iteration by iteration up to their
  declared ``.loopbound`` (the same trusted annotation the static
  analyzer replicates against);
* **value-based pruning**: a concrete partial store
  (:mod:`repro.wcet.mc.values`) decides input-independent branches
  exactly, so infeasible paths are never enumerated, and the
  visalint-powered branch-relevance slice (:mod:`repro.wcet.mc.slicing`)
  keys state subsumption so paths differing only in dead values merge.

Soundness of the produced bound (``mc >= observed`` on the simple
pipeline) rests on four arguments, each exercised by the test suite:

1. the recurrence is shared and monotone, and states are only ever
   *merged upward* (component-wise max) or split exactly;
2. unknown values strictly widen behaviour (both branch edges explored,
   loops run to their declared bound);
3. each sub-task region starts from a drained pipeline, which pointwise
   dominates any carried-over state (every rebased component of a live
   state is below the fresh state's origin);
4. D-cache misses are padded on top exactly like the static analyzer
   (the recurrence runs with D-hits; each real miss can delay the
   drained frontier by at most the stall it adds — the recurrence is
   1-Lipschitz in its memory-latency input).

Because the static analyzer over-approximates *per region* and this
engine is exact per region, ``static >= mc`` is the expected relation;
``repro wcet diff`` treats any violation as a soundness bug in the
shipped analyzer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.pipelines.inorder_engine import TimingState, advance
from repro.wcet.analyzer import (
    SubtaskWCET,
    TaskWCET,
    WCETAnalyzer,
    scope_topo_order,
)
from repro.wcet.cfg import BasicBlock, FunctionCFG
from repro.wcet.loops import Loop
from repro.wcet.mc.icache import ExactICache, ICacheDigest, orderfree_sets
from repro.wcet.mc.slicing import RelevanceMap, program_relevance
from repro.wcet.mc.values import ValueDigest, ValueStore
from repro.wcet.pipeline_model import edge_penalty, merge_timing

#: One scope-DAG node: ("block", address) or ("loop", header-address).
Node = tuple[str, int]

#: Subsumption key: branch-relevant values + canonical cache contents.
DigestKey = tuple[ValueDigest, ICacheDigest]

#: A set of explored states at one program point, merged by digest.
Bucket = dict[DigestKey, "MCState"]


class MCState:
    """One explored pipeline/value/cache state."""

    __slots__ = ("timing", "values", "icache")

    def __init__(
        self, timing: TimingState, values: ValueStore, icache: ExactICache
    ) -> None:
        self.timing = timing
        self.values = values
        self.icache = icache

    def clone(self) -> "MCState":
        return MCState(
            self.timing.clone(), self.values.clone(), self.icache.clone()
        )

    @property
    def frontier(self) -> int:
        """Completion time of everything issued (drained pipeline)."""
        return self.timing.mem_free + 1


@dataclass
class MCStats:
    """Exploration counters (observability for bench/docs)."""

    steps: int = 0
    merges: int = 0
    value_collapses: int = 0
    widenings: int = 0
    bound_exhausted: int = 0


class ModelCheckEngine:
    """Exact per-sub-task WCET by bounded state-space exploration.

    Drop-in alternative to :class:`repro.wcet.analyzer.WCETAnalyzer`:
    ``analyze`` returns the same :class:`TaskWCET` shape, computed over
    the same region partitioning, loop forest, and D-miss padding, so
    the two engines differ *only* in how they bound pipeline cycles.

    Args:
        analyzer: Supplies program structure (CFG, loops, regions) and
            the ``dcache_bounds`` padding; its timing results are not
            consulted.
        state_cap: Maximum distinct states kept per program point before
            the set is widened into one conservative state (sound; only
            precision is lost).  The C-lab workloads stay far below it.
    """

    def __init__(self, analyzer: WCETAnalyzer, state_cap: int = 64) -> None:
        self.a = analyzer
        self.config = analyzer.cache_config
        self.shift = self.config.block_shift
        self.state_cap = state_cap
        self.relevance: RelevanceMap = program_relevance(analyzer.cfg)
        self.orderfree = orderfree_sets(
            (inst.addr for inst in analyzer.program.instructions
             if inst.addr is not None),
            self.config,
        )
        self.stats = MCStats()
        self._result_cache: dict[int, list[int]] = {}

    # -- public API -------------------------------------------------------------

    def analyze(self, freq_hz: float = 1e9) -> TaskWCET:
        """Exact per-sub-task WCETs at ``freq_hz`` (cached per stall)."""
        stall = math.ceil(freq_hz * self.a.mem_stall_ns * 1e-9)
        if stall not in self._result_cache:
            self._result_cache[stall] = self._region_cycles(stall)
        cycles = self._result_cache[stall]
        task = TaskWCET(freq_hz=freq_hz, stall=stall)
        bounds = self.a.dcache_bounds
        for index, c in enumerate(cycles):
            dmiss = 0 if bounds is None else bounds[index]
            task.subtasks.append(
                SubtaskWCET(index=index, cycles=c, stall=stall,
                            dmiss_bound=dmiss)
            )
        return task

    # -- region driver -----------------------------------------------------------

    def _region_cycles(self, stall: int) -> list[int]:
        main = self.a.cfg.entry_function
        # Values and exact cache contents carry across region boundaries
        # (the hardware's do); timing restarts from a drained pipeline,
        # which dominates any carried-over recurrence state.
        carried = [
            MCState(TimingState(), ValueStore.initial(),
                    ExactICache(self.config))
        ]
        cycles: list[int] = []
        for region in self.a.regions:
            seeds = [
                MCState(TimingState(), st.values, st.icache) for st in carried
            ]
            back, externals = self._walk(
                main.entry, main, region["blocks"], region["loops"],
                region["entry"], seeds, None, stall,
            )
            if back:
                raise AnalysisError(
                    f"region {region['index']} has an unexpected back edge"
                )
            exits: list[MCState] = []
            worst = -1
            for target, bucket in externals.items():
                if target is not None and target != region["next"]:
                    raise AnalysisError(
                        f"region {region['index']} exits to unexpected "
                        f"{target:#x}"
                    )
                for st in bucket.values():
                    worst = max(worst, st.frontier)
                    exits.append(st)
            if not exits:
                raise AnalysisError(
                    f"region {region['index']} has no exit"
                )
            cycles.append(worst)
            carried = exits
        return cycles

    # -- scope walking -----------------------------------------------------------

    def _walk(
        self,
        fentry: int,
        fcfg: FunctionCFG,
        members: set[int],
        level_loops: list[Loop],
        entry: int,
        states: list[MCState],
        backedge_header: int | None,
        stall: int,
    ) -> tuple[list[MCState], dict[int | None, Bucket]]:
        """Push state sets through one scope's DAG in topological order.

        Returns (back-edge states, external exits keyed by target — None
        for function return / halt).
        """
        node_of: dict[int, object] = {}
        for loop in level_loops:
            for addr in loop.blocks:
                node_of[addr] = ("loop", loop.header)
        for addr in members:
            node_of.setdefault(addr, ("block", addr))
        loops_by_header = {loop.header: loop for loop in level_loops}

        order = scope_topo_order(fcfg, node_of, entry, backedge_header)
        pending: dict[object, Bucket] = {}
        back_bucket: Bucket = {}
        externals: dict[int | None, Bucket] = {}

        def deliver(target: int | None, st: MCState) -> None:
            if target is not None and target == backedge_header:
                self._add(back_bucket,
                          self._digest(fentry, backedge_header, st), st)
            elif target is None or target not in node_of:
                bucket = externals.setdefault(target, {})
                self._add(bucket, self._digest(fentry, None, st), st)
            else:
                node = node_of[target]
                bucket = pending.setdefault(node, {})
                kind_addr = node  # ("block", addr) / ("loop", header)
                self._add(
                    bucket,
                    self._digest(fentry, kind_addr[1], st),  # type: ignore[index]
                    st,
                )

        seed_bucket = pending.setdefault(node_of[entry], {})
        for st in states:
            self._add(seed_bucket, self._digest(fentry, entry, st), st)

        for node in order:
            bucket_or_none = pending.pop(node, None)
            if not bucket_or_none:
                continue
            kind, addr = node  # type: ignore[misc]
            if kind == "loop":
                outs = self._loop(
                    fentry, fcfg, loops_by_header[addr],
                    list(bucket_or_none.values()), stall,
                )
                for target, out in outs:
                    deliver(target, out)
            else:
                block = fcfg.blocks[addr]
                for st in bucket_or_none.values():
                    for target, out in self._block(block, st, stall):
                        deliver(target, out)
        return list(back_bucket.values()), externals

    def _block(
        self, block: BasicBlock, st: MCState, stall: int
    ) -> list[tuple[int | None, MCState]]:
        """Walk one basic block with one state; returns (target, state)."""
        insts = block.instructions
        for inst in insts[:-1]:
            self._step(st, inst, stall, False)
            st.values.apply(inst)
        last = insts[-1]
        if block.call_target is not None:
            self._step(st, last, stall, False)
            st.values.apply(last)
            results = self._function(block.call_target, [st], stall)
            return [(block.successors[0][1], s) for s in results]
        if last.is_branch and len(block.successors) > 1:
            taken = st.values.eval_branch(last)
            live = [
                edge for edge in block.successors
                if taken is None or (edge[0] == "taken") == taken
            ]
            outs: list[tuple[int | None, MCState]] = []
            for i, (kind, target) in enumerate(live):
                out = st if i == len(live) - 1 else st.clone()
                self._step(out, last, stall, edge_penalty(last, kind))
                outs.append((target, out))
            return outs
        kind, target = block.successors[0]
        self._step(st, last, stall, edge_penalty(last, kind))
        st.values.apply(last)
        return [(target, st)]

    def _function(
        self, entry: int, states: list[MCState], stall: int
    ) -> list[MCState]:
        """Analysis-time inlining: push the state set through the callee."""
        fcfg = self.a.cfg.functions[entry]
        forest = self.a.loops[entry]
        back, externals = self._walk(
            entry, fcfg, set(fcfg.blocks), forest.roots, entry, states,
            None, stall,
        )
        if back:
            raise AnalysisError(
                f"function {entry:#x} has an unexpected back edge"
            )
        results: list[MCState] = []
        for target, bucket in externals.items():
            if target is not None:
                raise AnalysisError(
                    f"function {entry:#x} escapes to {target:#x}"
                )
            results.extend(bucket.values())
        if not results:
            raise AnalysisError(f"function {entry:#x} never returns")
        return results

    def _loop(
        self,
        fentry: int,
        fcfg: FunctionCFG,
        loop: Loop,
        states: list[MCState],
        stall: int,
    ) -> list[tuple[int | None, MCState]]:
        """Exact loop unrolling up to the declared ``.loopbound``.

        Each round pushes the surviving states through the body once;
        states whose (known) exit condition fires leave through the
        collected exits.  If imprecise states still want another
        iteration past the declared bound, the bound is trusted — the
        same contract the static analyzer's replication relies on — and
        one final walk collects the exit paths.
        """
        outs: list[tuple[int | None, MCState]] = []
        current = states
        for _ in range(loop.bound):
            back, externals = self._walk(
                fentry, fcfg, loop.blocks, loop.children, loop.header,
                current, loop.header, stall,
            )
            for target, bucket in externals.items():
                outs.extend((target, st) for st in bucket.values())
            if not back:
                return outs
            current = back
        back, externals = self._walk(
            fentry, fcfg, loop.blocks, loop.children, loop.header,
            current, loop.header, stall,
        )
        if back:
            self.stats.bound_exhausted += 1
        for target, bucket in externals.items():
            outs.extend((target, st) for st in bucket.values())
        if not outs:
            raise AnalysisError(f"loop at {loop.header:#x} has no exit")
        return outs

    # -- state bookkeeping --------------------------------------------------------

    def _step(
        self, st: MCState, inst: object, stall: int, penalty: bool
    ) -> None:
        from repro.isa.instruction import Instruction

        assert isinstance(inst, Instruction) and inst.addr is not None
        extra = 0 if st.icache.access(inst.addr >> self.shift) else stall
        advance(st.timing, inst, extra, 0, penalty)
        self.stats.steps += 1

    def _digest(
        self, fentry: int, addr: int | None, st: MCState
    ) -> DigestKey:
        relevant = (
            None if addr is None else self.relevance.get((fentry, addr))
        )
        return (st.values.digest(relevant), st.icache.digest(self.orderfree))

    def _add(self, bucket: Bucket, key: DigestKey, st: MCState) -> None:
        """Insert ``st`` into a state set, merging or widening as needed."""
        current = bucket.get(key)
        if current is not None:
            # Digest-equal: identical branch-relevant values, memory, and
            # cache behaviour.  Keep the component-wise worst timing and
            # only the value facts both agree on.
            current.timing = merge_timing(current.timing, st.timing)
            current.values.intersect(st.values)
            self.stats.merges += 1
            return
        bucket[key] = st
        if len(bucket) > self.state_cap:
            self._collapse(bucket)

    def _collapse(self, bucket: Bucket) -> None:
        """Shrink an over-full state set, cheapest precision first.

        The explosion on data-dependent code comes from divergent *known
        values* (e.g. adpcm's quantizer constants), not from cache
        diversity, so the first stage groups states by exact cache
        digest and intersects values within each group: the caches stay
        exact, and the only cost is branches turning unknown (more paths
        explored — never a bound above the static analyzer's, which also
        walks every path).  Joining caches (:meth:`ExactICache.join`)
        is the last resort: it can re-charge a miss the static engine's
        persistence model prepays only once, pushing the "exact" bound
        *above* the static one, so it runs only if cache diversity alone
        still exceeds the cap.
        """
        groups: dict[ICacheDigest, MCState] = {}
        for st in bucket.values():
            key = st.icache.digest(self.orderfree)
            current = groups.get(key)
            if current is None:
                groups[key] = st
            else:
                current.timing = merge_timing(current.timing, st.timing)
                current.values.intersect(st.values)
        bucket.clear()
        if len(groups) > self.state_cap:
            widened = self._widen(list(groups.values()))
            bucket[self._digest(0, None, widened)] = widened
            self.stats.widenings += 1
            return
        self.stats.value_collapses += 1
        for st in groups.values():
            self._add(bucket, self._digest(0, None, st), st)

    def _widen(self, states: list[MCState]) -> MCState:
        """Collapse a state set into one conservative state (sound)."""
        base = states[0]
        for other in states[1:]:
            base.timing = merge_timing(base.timing, other.timing)
            base.values.intersect(other.values)
            base.icache.join(other.icache)
        return base
