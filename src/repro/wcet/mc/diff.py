"""Differential soundness oracle: static WCET vs model-checked WCET.

Runs both engines over the same program, D-miss padding, and frequency,
and reports the per-sub-task precision gap ``static − mc``.  The sign of
each gap is a one-bit soundness verdict:

* ``static >= mc`` everywhere — the static analyzer's over-approximation
  holds against an exact (bounded, exhaustive) exploration of the same
  pipeline model; the magnitude is the precision left on the table;
* ``static < mc`` anywhere — the static analyzer under-bounds a real
  path, i.e. a soundness bug.  ``repro wcet diff`` exits non-zero.

Optionally both dynamic pipelines are run as a third rung: observed
cycles must sit at or below the MC bound per sub-task (simple core via
breakpointed segments, complex core via the task's own ``__visa_aet``
self-measurement), giving the three-way invariant
``static >= mc >= observed`` the fuzz suite checks at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.isa import layout
from repro.isa.program import Program
from repro.memory.machine import Machine
from repro.pipelines.inorder import InOrderCore
from repro.pipelines.ooo.core import ComplexCore
from repro.wcet.analyzer import WCETAnalyzer
from repro.wcet.dcache_pad import measure_dcache_misses
from repro.wcet.mc.engine import ModelCheckEngine

#: Optional machine-preparation callback (loads workload inputs).
Prepare = Callable[[Machine], None]


@dataclass
class SubtaskGap:
    """One sub-task's bounds across the engine ladder (padded cycles)."""

    index: int
    static_cycles: int
    mc_cycles: int
    observed_simple: int | None = None
    observed_complex: int | None = None

    @property
    def gap(self) -> int:
        """Static precision loss vs the exact bound (negative = unsound)."""
        return self.static_cycles - self.mc_cycles

    @property
    def gap_pct(self) -> float:
        """Gap as a percentage of the exact bound."""
        if self.mc_cycles <= 0:
            return 0.0
        return 100.0 * self.gap / self.mc_cycles

    @property
    def violations(self) -> list[str]:
        """Broken rungs of ``static >= mc >= observed`` (empty = sound)."""
        out: list[str] = []
        if self.static_cycles < self.mc_cycles:
            out.append(
                f"static {self.static_cycles} < mc {self.mc_cycles}"
            )
        for name, observed in (
            ("simple", self.observed_simple),
            ("complex", self.observed_complex),
        ):
            if observed is None:
                continue
            if self.mc_cycles < observed:
                out.append(
                    f"mc {self.mc_cycles} < observed[{name}] {observed}"
                )
            if self.static_cycles < observed:
                out.append(
                    f"static {self.static_cycles} < observed[{name}] "
                    f"{observed}"
                )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "subtask": self.index,
            "static_cycles": self.static_cycles,
            "mc_cycles": self.mc_cycles,
            "observed_simple": self.observed_simple,
            "observed_complex": self.observed_complex,
            "gap": self.gap,
            "gap_pct": round(self.gap_pct, 4),
            "violations": self.violations,
        }


@dataclass
class DiffReport:
    """Per-sub-task engine comparison for one program at one frequency."""

    freq_mhz: float
    stall: int
    subtasks: list[SubtaskGap] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(s.violations for s in self.subtasks)

    @property
    def total_static(self) -> int:
        return sum(s.static_cycles for s in self.subtasks)

    @property
    def total_mc(self) -> int:
        return sum(s.mc_cycles for s in self.subtasks)

    @property
    def gap_pct(self) -> float:
        """Whole-task precision gap (static over mc), in percent."""
        if self.total_mc <= 0:
            return 0.0
        return 100.0 * (self.total_static - self.total_mc) / self.total_mc

    def to_dict(self) -> dict[str, Any]:
        return {
            "freq_mhz": self.freq_mhz,
            "stall": self.stall,
            "ok": self.ok,
            "total_static": self.total_static,
            "total_mc": self.total_mc,
            "gap_pct": round(self.gap_pct, 4),
            "subtasks": [s.to_dict() for s in self.subtasks],
        }


def observed_inorder(
    program: Program, prepare: Prepare | None = None, freq_hz: float = 1e9
) -> list[int]:
    """Per-sub-task simple-core cycles for one cold execution.

    Segments are delimited by breakpoints at the ``.subtask`` marks, the
    same attribution :func:`repro.wcet.dcache_pad.measure_dcache_misses`
    uses (one entry for unmarked programs).
    """
    marks = program.subtask_boundaries()
    num = max(1, program.num_subtasks)
    breakpoints = frozenset(marks[1:]) if len(marks) > 1 else frozenset()
    machine = Machine(program)
    if prepare is not None:
        prepare(machine)
    core = InOrderCore(machine, freq_hz=freq_hz)
    cycles = [0] * num
    for index in range(num):
        result = core.run(break_addrs=breakpoints)
        cycles[index] = result.cycles
        if result.reason == "halt":
            if index != num - 1:
                raise RuntimeError(f"halted in sub-task {index} of {num}")
            break
    return cycles


def observed_complex(
    program: Program, prepare: Prepare | None = None, freq_hz: float = 1e9
) -> list[int]:
    """Per-sub-task complex-core cycles for one cold execution.

    Sub-task attribution comes from the task's own self-measurement: the
    ``.subtask`` prologues store each AET into ``__visa_aet`` (paper
    §2.2), which is read back after the run.  Unmarked programs fall
    back to the whole-run cycle count.
    """
    machine = Machine(program)
    if prepare is not None:
        prepare(machine)
    core = ComplexCore(machine, freq_hz=freq_hz)
    result = core.run()
    if result.reason != "halt":
        raise RuntimeError(f"complex core stopped early: {result.reason}")
    if program.num_subtasks == 0:
        return [result.cycles]
    base = program.address_of(layout.VISA_AET_SYMBOL)
    words = machine.read_data_words(base, program.num_subtasks)
    return [int(w) for w in words]


def diff_program(
    program: Program,
    freq_mhz: float = 1000.0,
    prepare: Prepare | None = None,
    observe: bool = True,
    analyzer: WCETAnalyzer | None = None,
    engine: ModelCheckEngine | None = None,
    state_cap: int = 64,
) -> DiffReport:
    """Run both WCET engines (and optionally both cores) on one program.

    Args:
        program: The program under analysis.
        freq_mhz: Clock frequency (sets the memory-stall cycle count).
        prepare: Input loader for the dynamic runs and D-miss measurement.
        observe: Also execute on both pipelines for the third rung of
            ``static >= mc >= observed``.
        analyzer: Pre-built static analyzer (the seeded-defect tests pass
            deliberately broken ones); built fresh when omitted.  Its
            ``dcache_bounds`` are measured if still unset and shared with
            the MC engine, so the D-miss padding cancels out of the gap.
        engine: Pre-built MC engine; built from ``analyzer`` when omitted.
        state_cap: Per-point state cap for a freshly built MC engine.

    Returns:
        The per-sub-task report; ``report.ok`` is the soundness verdict.
    """
    if analyzer is None:
        analyzer = WCETAnalyzer(program)
    if analyzer.dcache_bounds is None:
        analyzer.dcache_bounds = measure_dcache_misses(program, prepare)
    if engine is None:
        engine = ModelCheckEngine(analyzer, state_cap=state_cap)
    freq_hz = freq_mhz * 1e6
    static = analyzer.analyze(freq_hz)
    exact = engine.analyze(freq_hz)
    if len(static.subtasks) != len(exact.subtasks):
        raise RuntimeError("engines disagree on the sub-task partitioning")
    simple = observed_inorder(program, prepare, freq_hz) if observe else None
    complex_ = observed_complex(program, prepare, freq_hz) if observe else None
    report = DiffReport(freq_mhz=freq_mhz, stall=static.stall)
    for k, (s, m) in enumerate(zip(static.subtasks, exact.subtasks)):
        report.subtasks.append(
            SubtaskGap(
                index=k,
                static_cycles=s.total_cycles,
                mc_cycles=m.total_cycles,
                observed_simple=None if simple is None else simple[k],
                observed_complex=None if complex_ is None else complex_[k],
            )
        )
    return report
