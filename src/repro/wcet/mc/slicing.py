"""Branch-relevance program slicing for the MC engine's state merging.

A backward dataflow problem — run on the *visalint* engine
(:func:`repro.analysis.dataflow.solve`) — computes, at every basic-block
entry, the set of registers that can still influence a control-flow
decision downstream (a classic slicing criterion: the union of all
branch conditions).  The model-checking engine digests explored states
through this set, so two states that differ only in *dead* values (a
clamped temporary, a result about to be overwritten) collapse into one
and the exploration stays linear on data-dependent code.

The slice is a pure precision device: the engine merges digest-equal
states by **intersecting** their known facts, so even a too-small
relevance set could never smuggle a wrong value across a merge — it
would only make a later branch unknown and both edges explored.  An
over-large set merely merges less.  Memory is treated as a single token
(``MEM``): once any relevant value is loaded, all store sources become
relevant, which soundly over-approximates aliasing without a points-to
analysis.

Interprocedurally, each function's entry relevance is summarized
bottom-up over the (acyclic) call graph and injected at its call sites.
"""

from __future__ import annotations

from repro.analysis.dataflow import DataflowProblem, solve
from repro.isa.instruction import RegRef
from repro.wcet.cfg import BasicBlock, FunctionCFG, ProgramCFG

#: Pseudo-register marking "some branch-relevant value lives in memory".
MEM: RegRef = ("m", 0)

#: Relevance at block entry, keyed by (function entry, block address).
RelevanceMap = dict[tuple[int, int], frozenset[RegRef]]


class _RelevanceProblem(DataflowProblem[frozenset[RegRef]]):
    """Backward may-analysis: registers live into a branch condition."""

    forward = False

    def __init__(self, callee_entry: dict[int, frozenset[RegRef]]) -> None:
        self._callee_entry = callee_entry

    def bottom(self) -> frozenset[RegRef]:
        return frozenset()

    def boundary(self) -> frozenset[RegRef]:
        return frozenset()

    def join(
        self, a: frozenset[RegRef], b: frozenset[RegRef]
    ) -> frozenset[RegRef]:
        return a | b

    def transfer(
        self, block: BasicBlock, state: frozenset[RegRef]
    ) -> frozenset[RegRef]:
        rel = set(state)
        last = block.instructions[-1]
        for inst in reversed(block.instructions):
            if inst is last and block.call_target is not None:
                # The callee's branches see the argument registers as-is.
                rel |= self._callee_entry.get(block.call_target, frozenset())
            if inst.is_branch or inst.is_indirect_jump:
                rel.update(inst.sources)
            dest = inst.dest
            if dest is not None and dest in rel:
                rel.discard(dest)
                rel.update(inst.sources)
                if inst.is_load:
                    rel.add(MEM)
            if inst.is_store and MEM in rel:
                rel.update(inst.sources)
        return frozenset(rel)


def _call_order(cfg: ProgramCFG) -> list[int]:
    """Function entries in callees-before-callers order (graph is acyclic)."""
    order: list[int] = []
    seen: set[int] = set()

    def visit(entry: int) -> None:
        if entry in seen:
            return
        seen.add(entry)
        for callee in sorted(cfg.call_graph.get(entry, ())):
            visit(callee)
        order.append(entry)

    for entry in sorted(cfg.functions):
        visit(entry)
    return order


def _function_relevance(
    fcfg: FunctionCFG, callee_entry: dict[int, frozenset[RegRef]]
) -> dict[int, frozenset[RegRef]]:
    """Relevance at each block entry of one function (backward solve)."""
    result = solve(_RelevanceProblem(callee_entry), fcfg)
    # Backward problems report the block-start state in ``after``.
    return dict(result.after)


def program_relevance(cfg: ProgramCFG) -> RelevanceMap:
    """Branch-relevant registers at every block entry of every function."""
    callee_entry: dict[int, frozenset[RegRef]] = {}
    relevance: RelevanceMap = {}
    for entry in _call_order(cfg):
        fcfg = cfg.functions[entry]
        per_block = _function_relevance(fcfg, callee_entry)
        callee_entry[entry] = per_block.get(fcfg.entry, frozenset())
        for addr, rel in per_block.items():
            relevance[(entry, addr)] = rel
    return relevance
