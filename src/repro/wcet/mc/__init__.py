"""Bounded model-checking WCET engine (the differential soundness oracle).

The package computes *exact* per-sub-task WCETs on small/medium programs
by exhaustively exploring the CFG × pipeline × cache × value state space
(:mod:`repro.wcet.mc.engine`), and diffs them against the shipped static
analyzer (:mod:`repro.wcet.mc.diff`): ``static >= mc >= observed`` must
hold per sub-task, or the static analyzer has a soundness bug.

Engine selection (``repro wcet --engine``, the service's ``wcet`` job
kind) defaults to the ``REPRO_WCET_ENGINE`` environment variable so a
whole fleet can be flipped onto the oracle without touching payloads;
the service pins the resolved engine into every normalized payload, so
cached results never alias across engines.
"""

from __future__ import annotations

import os

from repro.wcet.mc.diff import (
    DiffReport,
    SubtaskGap,
    diff_program,
    observed_complex,
    observed_inorder,
)
from repro.wcet.mc.engine import MCState, MCStats, ModelCheckEngine

#: Recognized WCET engine names (CLI ``--engine``, service payloads).
ENGINES = ("static", "mc")


def default_engine() -> str:
    """The engine used when a request doesn't name one.

    Resolves ``REPRO_WCET_ENGINE`` (``static`` when unset); unknown
    values fall back to ``static`` rather than failing a whole fleet.
    """
    engine = os.environ.get("REPRO_WCET_ENGINE", "static").strip().lower()
    return engine if engine in ENGINES else "static"


__all__ = [
    "DiffReport",
    "ENGINES",
    "MCState",
    "MCStats",
    "ModelCheckEngine",
    "SubtaskGap",
    "default_engine",
    "diff_program",
    "observed_complex",
    "observed_inorder",
]
