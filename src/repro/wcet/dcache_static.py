"""Static D-cache analysis — the paper's §3.3 "future work", implemented.

The paper's toolchain had a static D-cache module (White et al. [39, 40])
that was not re-integrated in time, so WCETs were padded from dynamic
traces.  This module provides the static alternative: a sound per-sub-task
bound on cold D-cache misses, derived from the MiniC source rather than a
trace, so the bound holds for *every* input — removing the one empirical
link in the WCET chain.

Method (a source-level variant of data-reference range analysis):

1. Re-run the compiler front half (parse + inline) to get the AST that
   ``main()`` actually executes, and split its top-level statements into
   sub-task regions at the ``__subtask`` markers — the same partition the
   code generator emits.
2. For every array reference in a region, bound the *index interval* by
   interval arithmetic over literals and counted-loop induction variables
   (a ``for`` loop's ``__loopbound`` plus its affine init/step give the
   variable's range; anything else widens to the whole array, which is
   still sound for in-bounds programs).
3. Convert index intervals to address ranges using the linked program's
   symbols, add the statically-known fixed costs (scalar globals, the
   stack frame, the float-constant pool, the VISA instrumentation
   arrays), and count distinct cache blocks.
4. Check LRU persistence exactly as the I-cache analysis does: if any
   cache set would receive more distinct blocks than its associativity,
   the once-per-block accounting is unsound and the analysis *refuses*
   (callers fall back to trace padding) instead of under-reporting.

The resulting per-region block counts are valid ``dcache_bounds`` for
:class:`repro.wcet.analyzer.WCETAnalyzer`: each block can miss at most
once per task instance from a cold cache, and the region partition charges
it to every region that touches it (covering warm-start reuse too).

Assumption (stated, and asserted by the functional test suite): array
indices stay within their declared bounds — the same assumption every
static data-cache analysis in the literature makes for C without runtime
checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.isa import layout
from repro.isa.program import Program
from repro.memory.cache import CacheConfig
from repro.minicc import c_ast as ast
from repro.minicc.inline import inline_module
from repro.minicc.parser import parse
from repro.workloads.base import Workload

#: Interval of possible values; None means unknown (widen to the array).
Interval = tuple[int, int] | None


def _ival(lo: int, hi: int) -> Interval:
    return (min(lo, hi), max(lo, hi))


def _add(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (a[0] + b[0], a[1] + b[1])


def _sub(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (a[0] - b[1], a[1] - b[0])


def _mul(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    return (min(products), max(products))


def _shift(a: Interval, b: Interval, left: bool) -> Interval:
    if a is None or b is None or b[0] < 0 or b[1] > 31:
        return None
    if left:
        return _ival(min(a[0] << s for s in (b[0], b[1])),
                     max(a[1] << s for s in (b[0], b[1])))
    return _ival(a[0] >> b[1], a[1] >> b[0])


class _IndexBounds:
    """Interval evaluation of index expressions under loop-variable ranges."""

    def __init__(self, env: dict[str, Interval]):
        self.env = env

    def eval(self, expr: ast.Expr) -> Interval:
        if isinstance(expr, ast.IntLit):
            return (expr.value, expr.value)
        if isinstance(expr, ast.Var):
            return self.env.get(expr.name)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self.eval(expr.operand)
            return None if inner is None else (-inner[1], -inner[0])
        if isinstance(expr, ast.Binary):
            left, right = self.eval(expr.left), self.eval(expr.right)
            if expr.op == "+":
                return _add(left, right)
            if expr.op == "-":
                return _sub(left, right)
            if expr.op == "*":
                return _mul(left, right)
            if expr.op == "<<":
                return _shift(left, right, left=True)
            if expr.op == ">>":
                return _shift(left, right, left=False)
            return None
        return None


def _loop_var_range(stmt: ast.For) -> tuple[str, Interval] | None:
    """Range of a counted for-loop's induction variable.

    Uses the loop's (mandatory) bound with its affine init/step; the
    condition itself may be data-dependent (srt's triangular loop), the
    bound still caps the iteration count.
    """
    if not (
        isinstance(stmt.init, ast.Assign)
        and isinstance(stmt.init.target, ast.Var)
        and isinstance(stmt.init.value, ast.IntLit)
        and isinstance(stmt.step, ast.Assign)
        and isinstance(stmt.step.target, ast.Var)
        and stmt.step.target.name == stmt.init.target.name
        and isinstance(stmt.step.value, ast.Binary)
        and stmt.step.value.op in ("+", "-")
        and isinstance(stmt.step.value.left, ast.Var)
        and stmt.step.value.left.name == stmt.init.target.name
        and isinstance(stmt.step.value.right, ast.IntLit)
        and stmt.bound is not None
        and stmt.bound > 0
    ):
        return None
    start = stmt.init.value.value
    delta = stmt.step.value.right.value
    if stmt.step.value.op == "-":
        delta = -delta
    if delta == 0:
        return None
    last = start + delta * (stmt.bound - 1)
    return stmt.init.target.name, _ival(start, last)


@dataclass
class _ArrayInfo:
    base: int
    dims: tuple[int, ...]

    @property
    def total_words(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return max(1, total)


class StaticDCacheAnalyzer:
    """Derives per-sub-task cold D-cache miss bounds from MiniC source."""

    def __init__(
        self,
        source: str,
        program: Program,
        cache: CacheConfig | None = None,
    ):
        self.cache = cache or CacheConfig()
        self.program = program
        module = inline_module(parse(source))
        self.module = module
        self.arrays: dict[str, _ArrayInfo] = {}
        self.scalars: dict[str, int] = {}
        for g in module.globals:
            if g.name not in program.symbols:
                raise AnalysisError(f"global {g.name!r} missing from program")
            if g.dims:
                self.arrays[g.name] = _ArrayInfo(
                    base=program.symbols[g.name], dims=g.dims
                )
            else:
                self.scalars[g.name] = program.symbols[g.name]
        mains = [f for f in module.functions if f.name == "main"]
        if not mains:
            raise AnalysisError("no main() in source")
        self.main = mains[0]
        self.float_consts = _count_float_literals(module)
        self.num_locals = _count_locals(self.main)

    # -- public API -------------------------------------------------------------

    def bounds(self) -> list[int]:
        """Per-sub-task cold-miss bounds (one entry for unmarked programs).

        Raises:
            AnalysisError: if the touched blocks of any region conflict in
                some cache set beyond the associativity (the once-per-block
                bound would be unsound; fall back to trace calibration).
        """
        regions = self._regions()
        out = []
        for region in regions:
            ranges = self._region_ranges(region)
            blocks = self._blocks_of(ranges)
            self._check_persistence(blocks)
            out.append(len(blocks))
        return out

    # -- region structure --------------------------------------------------------

    def _regions(self) -> list[list[ast.Stmt]]:
        regions: list[list[ast.Stmt]] = [[]]
        for stmt in self.main.body.stmts:
            if isinstance(stmt, ast.Subtask):
                if stmt.index == 0:
                    continue  # prologue merges into the first region
                regions.append([])
            elif isinstance(stmt, ast.TaskEnd):
                continue
            else:
                regions[-1].append(stmt)
        return regions

    # -- reference collection -----------------------------------------------------

    def _region_ranges(self, stmts: list[ast.Stmt]) -> list[tuple[int, int]]:
        ranges: list[tuple[int, int]] = []
        # Fixed per-region costs: the stack frame (spills, saves), the
        # float-constant pool, and the VISA instrumentation arrays.
        frame_bytes = 4 * (self.num_locals + 20)
        stack_top = layout.STACK_TOP
        ranges.append((stack_top - frame_bytes, stack_top))
        if self.float_consts:
            pool = 4 * self.float_consts
            # The pool sits in .data after the globals; bound it by symbol
            # when present, else charge its worst-case block span.
            ranges.append((self.program.data_base, self.program.data_base))
            ranges.append((-pool, -1))  # sentinel handled in _blocks_of
        for name in (layout.VISA_INCR_SYMBOL, layout.VISA_AET_SYMBOL):
            if name in self.program.symbols:
                base = self.program.symbols[name]
                count = max(1, self.program.num_subtasks)
                ranges.append((base, base + 4 * count - 1))
        for addr in self.scalars.values():
            ranges.append((addr, addr + 3))

        env: dict[str, Interval] = {}
        self._walk_stmts(stmts, env, ranges)
        return ranges

    def _walk_stmts(self, stmts, env, ranges) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, env, ranges)

    def _walk_stmt(self, stmt, env, ranges) -> None:
        if isinstance(stmt, ast.Block):
            self._walk_stmts(stmt.stmts, env, ranges)
        elif isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                self._walk_expr(stmt.init, env, ranges)
            env[stmt.name] = _IndexBounds(env).eval(stmt.init) if stmt.init else None
        elif isinstance(stmt, (ast.ExprStmt, ast.Out, ast.Return)):
            expr = getattr(stmt, "expr", None) or getattr(stmt, "value", None)
            if expr is not None:
                self._walk_expr(expr, env, ranges)
        elif isinstance(stmt, ast.If):
            self._walk_expr(stmt.cond, env, ranges)
            self._walk_stmt(stmt.then, dict(env), ranges)
            if stmt.els is not None:
                self._walk_stmt(stmt.els, dict(env), ranges)
        elif isinstance(stmt, ast.While):
            self._walk_expr(stmt.cond, env, ranges)
            body_env = dict(env)
            _kill_assigned(stmt.body, body_env)
            self._walk_stmt(stmt.body, body_env, ranges)
        elif isinstance(stmt, ast.For):
            inner = dict(env)
            _kill_assigned(stmt.body, inner)
            var_range = _loop_var_range(stmt)
            if var_range is not None:
                inner[var_range[0]] = var_range[1]
            elif (
                isinstance(stmt.init, ast.Assign)
                and isinstance(stmt.init.target, ast.Var)
            ):
                inner[stmt.init.target.name] = None
            if stmt.init is not None:
                self._walk_expr(stmt.init, env, ranges)
            if stmt.cond is not None:
                self._walk_expr(stmt.cond, inner, ranges)
            if stmt.step is not None:
                self._walk_expr(stmt.step, inner, ranges)
            self._walk_stmt(stmt.body, inner, ranges)

    def _walk_expr(self, expr, env, ranges) -> None:
        if isinstance(expr, ast.Index):
            self._record_index(expr, env, ranges)
            for index_expr in expr.indices:
                self._walk_expr(index_expr, env, ranges)
        elif isinstance(expr, ast.Binary):
            self._walk_expr(expr.left, env, ranges)
            self._walk_expr(expr.right, env, ranges)
        elif isinstance(expr, (ast.Unary, ast.Cast)):
            self._walk_expr(expr.operand, env, ranges)
        elif isinstance(expr, ast.Assign):
            self._walk_expr(expr.value, env, ranges)
            if isinstance(expr.target, ast.Index):
                self._record_index(expr.target, env, ranges)
                for index_expr in expr.target.indices:
                    self._walk_expr(index_expr, env, ranges)
            elif isinstance(expr.target, ast.Var):
                env[expr.target.name] = _IndexBounds(env).eval(expr.value)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._walk_expr(arg, env, ranges)
            # Un-inlined calls may touch anything addressable: widen to
            # every array (sound; rare, since inlining runs first).
            for info in self.arrays.values():
                ranges.append((info.base, info.base + 4 * info.total_words - 1))
            for addr in self.scalars.values():
                ranges.append((addr, addr + 3))

    def _record_index(self, expr: ast.Index, env, ranges) -> None:
        info = self.arrays.get(expr.name)
        if info is None:
            raise AnalysisError(f"unknown array {expr.name!r}")
        bounds = _IndexBounds(env)
        if len(info.dims) == 1:
            interval = bounds.eval(expr.indices[0])
            total = info.dims[0]
        else:
            rows = bounds.eval(expr.indices[0])
            cols = bounds.eval(expr.indices[1])
            ncols = (info.dims[1], info.dims[1])
            interval = _add(_mul(rows, ncols), cols)
            total = info.total_words
        if interval is None:
            interval = (0, total - 1)
        lo = max(0, interval[0])
        hi = min(total - 1, interval[1])
        if lo > hi:
            return
        ranges.append((info.base + 4 * lo, info.base + 4 * hi + 3))

    # -- block accounting ----------------------------------------------------------

    def _blocks_of(self, ranges: list[tuple[int, int]]) -> set[int]:
        shift = self.cache.block_shift
        blocks: set[int] = set()
        float_pool_blocks = 0
        for lo, hi in ranges:
            if lo < 0:  # float-pool sentinel: size-only charge
                float_pool_blocks = max(
                    float_pool_blocks, (hi - lo) // self.cache.block_bytes + 2
                )
                continue
            blocks.update(range(lo >> shift, (hi >> shift) + 1))
        if float_pool_blocks:
            # Model the pool as its own fresh blocks (disjoint from arrays).
            sentinel_base = (1 << 40) >> shift
            blocks.update(range(sentinel_base, sentinel_base + float_pool_blocks))
        return blocks

    def _check_persistence(self, blocks: set[int]) -> None:
        per_set: dict[int, int] = {}
        for block in blocks:
            index = block % self.cache.num_sets
            per_set[index] = per_set.get(index, 0) + 1
            if per_set[index] > self.cache.assoc:
                raise AnalysisError(
                    "data working set conflicts exceed associativity; "
                    "static once-per-block bound would be unsound — use "
                    "trace calibration instead"
                )


def _kill_assigned(stmt: ast.Stmt, env: dict[str, Interval]) -> None:
    """Drop env entries for variables the statement may reassign."""

    def walk_expr(expr):
        if isinstance(expr, ast.Assign) and isinstance(expr.target, ast.Var):
            env.pop(expr.target.name, None)
            walk_expr(expr.value)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, (ast.Unary, ast.Cast)):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, ast.Index):
            for index_expr in expr.indices:
                walk_expr(index_expr)

    def walk(node):
        if isinstance(node, ast.Block):
            for inner in node.stmts:
                walk(inner)
        elif isinstance(node, ast.Decl):
            env.pop(node.name, None)
        elif isinstance(node, ast.ExprStmt):
            walk_expr(node.expr)
        elif isinstance(node, (ast.Out, ast.Return)):
            if getattr(node, "value", None) is not None:
                walk_expr(node.value)
        elif isinstance(node, ast.If):
            walk_expr(node.cond)
            walk(node.then)
            if node.els is not None:
                walk(node.els)
        elif isinstance(node, (ast.While, ast.For)):
            if isinstance(node, ast.For):
                for part in (node.init, node.cond, node.step):
                    if part is not None:
                        walk_expr(part)
            else:
                walk_expr(node.cond)
            walk(node.body)

    walk(stmt)


def static_dcache_bounds(workload: Workload) -> list[int]:
    """Sound per-sub-task D-cache miss bounds for a MiniC workload.

    A drop-in, input-independent alternative to
    :func:`repro.wcet.dcache_pad.calibrate_dcache_bounds`.
    """
    analyzer = StaticDCacheAnalyzer(workload.source, workload.program)
    return analyzer.bounds()


def _count_float_literals(module: ast.Module) -> int:
    count = 0

    def walk_expr(expr):
        nonlocal count
        if isinstance(expr, ast.FloatLit):
            count += 1
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, (ast.Unary, ast.Cast)):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Assign):
            walk_expr(expr.target)
            walk_expr(expr.value)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, ast.Index):
            for index_expr in expr.indices:
                walk_expr(index_expr)

    def walk(stmt):
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk(inner)
        elif isinstance(stmt, ast.Decl) and stmt.init is not None:
            walk_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, (ast.Out, ast.Return)):
            if getattr(stmt, "value", None) is not None:
                walk_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            walk_expr(stmt.cond)
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, (ast.While, ast.For)):
            walk(stmt.body)

    for function in module.functions:
        walk(function.body)
    return count


def _count_locals(function: ast.Function) -> int:
    count = len(function.params)

    def walk(stmt):
        nonlocal count
        if isinstance(stmt, ast.Decl):
            count += 1
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk(inner)
        elif isinstance(stmt, ast.If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, (ast.While, ast.For)):
            walk(stmt.body)

    walk(function.body)
    return count
