"""Control-flow graph construction from an assembled program.

Functions are discovered from the call graph (``jal`` targets, plus the
program entry).  Within a function, ``jal`` is treated as a sequential
instruction carrying a call annotation; ``jr ra`` terminates a function.
Indirect calls (``jalr``) and computed jumps are rejected — like the
paper's analyzer, we require the statically analyzable code style the
C-lab suite guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import RA


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        start: Address of the first instruction.
        instructions: The instructions, in order.
        successors: Out-edges as (kind, target-address) pairs; kinds are
            ``"fall"`` (fallthrough), ``"taken"`` (branch taken),
            ``"jump"`` (unconditional direct jump), ``"return"``.
        call_target: Entry address of the callee when the block ends in
            ``jal`` (the call returns to the fallthrough successor).
    """

    start: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[tuple[str, int | None]] = field(default_factory=list)
    call_target: int | None = None

    @property
    def end(self) -> int:
        return self.start + 4 * len(self.instructions)

    @property
    def last(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BB {self.start:#x}..{self.end:#x}>"


@dataclass
class FunctionCFG:
    """CFG of one function."""

    entry: int
    blocks: dict[int, BasicBlock]
    #: Blocks ending in ``jr ra``.
    return_blocks: list[int]
    name: str = ""

    def block(self, addr: int) -> BasicBlock:
        return self.blocks[addr]

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {addr: [] for addr in self.blocks}
        for addr, block in self.blocks.items():
            for _kind, succ in block.successors:
                if succ is not None and succ in preds:
                    preds[succ].append(addr)
        return preds


@dataclass
class ProgramCFG:
    """All function CFGs plus the call graph."""

    program: Program
    functions: dict[int, FunctionCFG]
    #: caller entry -> set of callee entries
    call_graph: dict[int, set[int]]

    @property
    def entry_function(self) -> FunctionCFG:
        return self.functions[self.program.entry]

    def _describe_function(self, addr: int) -> str:
        """Symbol name of the function at ``addr`` (hex when unnamed)."""
        cfg = self.functions.get(addr)
        if cfg is not None and cfg.name:
            return f"{cfg.name} ({addr:#x})"
        return hex(addr)

    def check_no_recursion(self) -> None:
        """Raise if the call graph has a cycle (unanalyzable).

        The traversal is an explicit-stack DFS, so arbitrarily deep
        (synthetic) call chains cannot hit Python's recursion limit.

        Raises:
            AnalysisError: naming the call chain of the offending cycle.
        """
        # 0 = unvisited, 1 = on the current DFS path, 2 = fully explored.
        color: dict[int, int] = {}
        for root in self.functions:
            if color.get(root):
                continue
            # Each stack entry is (node, iterator over its callees); the
            # stack itself is the current call chain for error reporting.
            stack: list[tuple[int, list[int]]] = [
                (root, sorted(self.call_graph.get(root, ())))
            ]
            color[root] = 1
            while stack:
                node, pending = stack[-1]
                if not pending:
                    color[node] = 2
                    stack.pop()
                    continue
                callee = pending.pop()
                state = color.get(callee, 0)
                if state == 2:
                    continue
                if state == 1:
                    chain = [entry for entry, _ in stack] + [callee]
                    start = chain.index(callee)
                    names = " -> ".join(
                        self._describe_function(a) for a in chain[start:]
                    )
                    raise AnalysisError(f"recursive call cycle: {names}")
                color[callee] = 1
                stack.append((callee, sorted(self.call_graph.get(callee, ()))))


def _function_entries(program: Program) -> set[int]:
    entries = {program.entry}
    for inst in program.instructions:
        if inst.op is Op.JAL:
            entries.add(inst.jump_target())
    return entries


def build_cfg(program: Program) -> ProgramCFG:
    """Build per-function CFGs and the call graph.

    Raises:
        AnalysisError: on indirect calls, computed jumps, or control flow
            that escapes the text segment.
    """
    entries = _function_entries(program)
    functions: dict[int, FunctionCFG] = {}
    call_graph: dict[int, set[int]] = {}
    for entry in sorted(entries):
        cfg = _build_function(program, entry, entries)
        functions[entry] = cfg
        call_graph[entry] = {
            block.call_target
            for block in cfg.blocks.values()
            if block.call_target is not None
        }
        for name, addr in program.symbols.items():
            if addr == entry:
                cfg.name = name
                break
    pcfg = ProgramCFG(program, functions, call_graph)
    pcfg.check_no_recursion()
    return pcfg


def _build_function(
    program: Program, entry: int, all_entries: set[int]
) -> FunctionCFG:
    # Discover reachable instructions, treating jal as sequential.
    leaders: set[int] = {entry}
    reachable: set[int] = set()
    worklist = [entry]
    while worklist:
        addr = worklist.pop()
        if addr in reachable:
            continue
        if not program.contains(addr):
            raise AnalysisError(f"control flow leaves text segment at {addr:#x}")
        reachable.add(addr)
        inst = program.inst_at(addr)
        for succ in _successor_addrs(inst, entry, all_entries):
            worklist.append(succ)
    # Leaders: targets of control transfers and instructions after them.
    for addr in reachable:
        inst = program.inst_at(addr)
        if inst.is_branch:
            leaders.add(inst.branch_target())
            leaders.add(addr + 4)
        elif inst.op is Op.J:
            leaders.add(inst.jump_target())
        elif inst.op is Op.JAL:
            leaders.add(addr + 4)
        elif inst.op is Op.JR:
            pass
    for mark in program.subtask_marks:
        if mark in reachable:
            leaders.add(mark)
    leaders &= reachable

    blocks: dict[int, BasicBlock] = {}
    return_blocks: list[int] = []
    for leader in sorted(leaders):
        block = BasicBlock(start=leader)
        addr = leader
        while True:
            inst = program.inst_at(addr)
            block.instructions.append(inst)
            next_addr = addr + 4
            ends = False
            if inst.is_branch:
                block.successors = [
                    ("taken", inst.branch_target()),
                    ("fall", next_addr),
                ]
                ends = True
            elif inst.op is Op.J:
                block.successors = [("jump", inst.jump_target())]
                ends = True
            elif inst.op is Op.JAL:
                target = inst.jump_target()
                if target == entry:
                    raise AnalysisError(f"direct recursion at {addr:#x}")
                block.call_target = target
                block.successors = [("fall", next_addr)]
                ends = True
            elif inst.op is Op.JR:
                if inst.rs != RA:
                    raise AnalysisError(
                        f"computed jump (jr non-ra) at {addr:#x} is not analyzable"
                    )
                block.successors = [("return", None)]
                return_blocks.append(leader)
                ends = True
            elif inst.op is Op.JALR:
                raise AnalysisError(f"indirect call at {addr:#x} is not analyzable")
            elif inst.op is Op.HALT:
                block.successors = [("return", None)]
                return_blocks.append(leader)
                ends = True
            elif next_addr in leaders:
                block.successors = [("fall", next_addr)]
                ends = True
            if ends:
                break
            addr = next_addr
        blocks[leader] = block
    # Deduplicate: a block ending in halt and one ending in jr could both
    # be return blocks; that's fine.  Validate successors stay in function.
    for block in blocks.values():
        for kind, succ in block.successors:
            if succ is not None and succ not in blocks:
                raise AnalysisError(
                    f"edge from {block.start:#x} to {succ:#x} leaves the "
                    f"function at {entry:#x}"
                )
    return FunctionCFG(entry=entry, blocks=blocks, return_blocks=return_blocks)


def _successor_addrs(
    inst: Instruction, entry: int, all_entries: set[int]
) -> list[int]:
    addr = inst.addr
    assert addr is not None
    if inst.is_branch:
        return [inst.branch_target(), addr + 4]
    if inst.op is Op.J:
        return [inst.jump_target()]
    if inst.op is Op.JAL:
        return [addr + 4]  # call returns here
    if inst.op in (Op.JR, Op.JALR, Op.HALT):
        return []
    return [addr + 4]
