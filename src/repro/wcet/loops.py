"""Dominator and natural-loop analysis over a function CFG.

Produces the loop-nesting tree the timing analyzer processes bottom-up
(paper §3.3: "the WCET for an outer loop is not calculated until the times
for all of its inner loops are known").  Loop bounds come from the
program's ``.loopbound`` annotations, keyed by loop-header address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.isa.program import Program
from repro.wcet.cfg import FunctionCFG


def dominators(cfg: FunctionCFG) -> dict[int, set[int]]:
    """Classic iterative dominator computation.

    Returns, for each block address, the set of addresses dominating it.
    """
    addrs = list(cfg.blocks)
    preds = cfg.predecessors()
    dom: dict[int, set[int]] = {a: set(addrs) for a in addrs}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for addr in addrs:
            if addr == cfg.entry:
                continue
            incoming = [dom[p] for p in preds[addr] if p in dom]
            new = set.intersection(*incoming) if incoming else set()
            new = new | {addr}
            if new != dom[addr]:
                dom[addr] = new
                changed = True
    return dom


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: Loop-header block address.
        blocks: All block addresses in the loop (header included).
        bound: Maximum body iterations (from ``.loopbound``).
        children: Immediately nested loops.
        parent: Enclosing loop, if any.
    """

    header: int
    blocks: set[int]
    bound: int
    children: list["Loop"] = field(default_factory=list)
    parent: "Loop | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop @{self.header:#x} x{self.bound} ({len(self.blocks)} blocks)>"


@dataclass
class LoopForest:
    """All loops of one function, as a nesting forest."""

    roots: list[Loop]
    by_header: dict[int, Loop]

    def innermost(self, addr: int) -> Loop | None:
        """The innermost loop containing block ``addr`` (None if outside)."""
        best: Loop | None = None
        for loop in self.by_header.values():
            if addr in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best


def find_loops(cfg: FunctionCFG, program: Program) -> LoopForest:
    """Identify natural loops and build the nesting forest.

    Raises:
        AnalysisError: on irreducible control flow (a back edge whose
            target does not dominate its source) or a loop lacking a
            ``.loopbound`` annotation.
    """
    dom = dominators(cfg)
    # Back edges: u -> h where h dominates u.
    bodies: dict[int, set[int]] = {}
    preds = cfg.predecessors()
    for addr, block in cfg.blocks.items():
        for _kind, succ in block.successors:
            if succ is None:
                continue
            if succ in dom[addr]:  # back edge addr -> succ
                body = bodies.setdefault(succ, {succ})
                _collect_body(addr, succ, preds, body)
            elif addr in dom.get(succ, set()) and succ in cfg.blocks:
                continue
    # Irreducibility check: any edge into a loop body that bypasses the
    # header makes the "natural loop" model unsound.
    for header, body in bodies.items():
        for addr in body:
            if addr == header:
                continue
            for pred in preds[addr]:
                if pred not in body:
                    raise AnalysisError(
                        f"irreducible control flow: edge {pred:#x} -> "
                        f"{addr:#x} enters loop at {header:#x} past its header"
                    )
    loops: dict[int, Loop] = {}
    for header, body in bodies.items():
        bound = program.loop_bounds.get(header)
        if bound is None:
            raise AnalysisError(
                f"loop at {program.describe(header)} has no .loopbound "
                "annotation"
            )
        loops[header] = Loop(header=header, blocks=body, bound=bound)
    # Nesting: loop A is a child of the smallest loop strictly containing it.
    roots: list[Loop] = []
    for loop in loops.values():
        parent: Loop | None = None
        for other in loops.values():
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if parent is None or len(other.blocks) < len(parent.blocks):
                    parent = other
        loop.parent = parent
        if parent is None:
            roots.append(loop)
        else:
            parent.children.append(loop)
    return LoopForest(roots=roots, by_header=loops)


def _collect_body(
    tail: int, header: int, preds: dict[int, list[int]], body: set[int]
) -> None:
    """Standard natural-loop body collection (walk predecessors from tail)."""
    stack = [tail]
    while stack:
        addr = stack.pop()
        if addr in body:
            continue
        body.add(addr)
        stack.extend(preds[addr])
