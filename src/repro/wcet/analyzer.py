"""Static WCET analysis driver (paper §3.3).

Processes the timing-analysis tree bottom-up: innermost loops first (via a
fix-point over per-iteration path timing), then outer loops and functions
(analysis-time inlining of calls), and finally the sub-task regions of
``main()``, whose boundaries come from the ``.subtask`` markers.

The output is one WCET per sub-task, split the way the paper's EQ 1 / EQ 4
need it: pipeline cycles at a given frequency's memory stall time, plus a
worst-case D-cache miss bound that is padded on top (§3.3: the D-cache
module is substituted by trace-derived padding).

Safety argument (tested, not assumed):

* the pipeline recurrence is shared with the dynamic simulator,
* joins merge states by component-wise max (monotone recurrence),
* loop iterations are replicated only after the per-iteration cost reaches
  a fix-point,
* sub-task boundaries assume a full pipeline drain (no overlap across
  scopes), which only over-approximates,
* every I-cache reference is a miss unless persistence proves otherwise;
  persistent blocks are charged one miss at the entry of the outermost
  scope where they persist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.isa.program import Program
from repro.memory.cache import CacheConfig
from repro.memory.machine import WORST_CASE_MEM_STALL_NS
from repro.wcet.cfg import BasicBlock, FunctionCFG, build_cfg
from repro.wcet.icache_static import ScopeCacheInfo, scope_info
from repro.wcet.loops import Loop, find_loops
from repro.wcet.pipeline_model import PathState, edge_penalty, merge, step


@dataclass
class SubtaskWCET:
    """Worst-case execution time of one sub-task at one frequency.

    Attributes:
        index: Sub-task index.
        cycles: Pipeline WCET cycles (I-cache effects included).
        dmiss_bound: Worst-case number of D-cache misses (padding).
        stall: Memory stall time in cycles at the analyzed frequency.
    """

    index: int
    cycles: int
    stall: int
    dmiss_bound: int = 0

    @property
    def total_cycles(self) -> int:
        """Padded WCET in cycles (paper's per-sub-task WCET)."""
        return self.cycles + self.dmiss_bound * self.stall


@dataclass
class TaskWCET:
    """Per-sub-task WCETs of a whole task at one frequency."""

    freq_hz: float
    stall: int
    subtasks: list[SubtaskWCET] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(s.total_cycles for s in self.subtasks)

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.freq_hz

    def subtask_seconds(self, index: int) -> float:
        return self.subtasks[index].total_cycles / self.freq_hz

    def tail_seconds(self, first: int) -> float:
        """Sum of WCETs of sub-tasks ``first`` .. end (EQ 1's summation)."""
        return sum(self.subtask_seconds(k) for k in range(first, len(self.subtasks)))


class WCETAnalyzer:
    """Static worst-case timing analyzer for one program."""

    #: Analysis-pass class instantiated per memory-stall count.  The
    #: seeded-defect corpus (tests/test_wcet_oracle_defects.py) swaps in
    #: deliberately broken subclasses of ``_Run``; production code never
    #: overrides this.
    run_cls: "type[_Run]"

    def __init__(
        self,
        program: Program,
        cache_config: CacheConfig | None = None,
        mem_stall_ns: float = WORST_CASE_MEM_STALL_NS,
        fixpoint_cap: int = 16,
    ):
        self.program = program
        self.cache_config = cache_config or CacheConfig()
        self.mem_stall_ns = mem_stall_ns
        self.fixpoint_cap = fixpoint_cap
        self.cfg = build_cfg(program)
        self.loops = {
            entry: find_loops(fcfg, program)
            for entry, fcfg in self.cfg.functions.items()
        }
        #: Optional per-sub-task worst-case D-cache miss counts
        #: (see :mod:`repro.wcet.dcache_pad`); applied to every analysis.
        self.dcache_bounds: list[int] | None = None
        self._regions = self._build_regions()
        self._func_addrs_cache: dict[int, frozenset[int]] = {}
        self._scope_info_cache: dict[object, ScopeCacheInfo] = {}
        self._result_cache: dict[int, list[int]] = {}

    # -- public API -------------------------------------------------------------

    def analyze(self, freq_hz: float = 1e9) -> TaskWCET:
        """Compute per-sub-task WCETs at ``freq_hz``.

        Results are cached per distinct memory-stall cycle count, so
        sweeping the 37-point DVS table costs at most 37 analysis runs.
        """
        stall = math.ceil(freq_hz * self.mem_stall_ns * 1e-9)
        if stall not in self._result_cache:
            self._result_cache[stall] = self.run_cls(self, stall).region_cycles()
        cycles = self._result_cache[stall]
        task = TaskWCET(freq_hz=freq_hz, stall=stall)
        for index, c in enumerate(cycles):
            dmiss = 0
            if self.dcache_bounds is not None:
                dmiss = self.dcache_bounds[index]
            task.subtasks.append(
                SubtaskWCET(index=index, cycles=c, stall=stall, dmiss_bound=dmiss)
            )
        return task

    @property
    def num_subtasks(self) -> int:
        return len(self._regions)

    @property
    def regions(self) -> list[dict]:
        """Sub-task regions of ``main()`` (index/entry/blocks/loops/next).

        Public so alternative engines — the model-checking oracle in
        :mod:`repro.wcet.mc` — analyze exactly the same partitioning.
        """
        return self._regions

    # -- region (sub-task) structure ----------------------------------------------

    def _build_regions(self) -> list[dict]:
        """Partition main() into sub-task regions by the .subtask marks."""
        main = self.cfg.entry_function
        marks = self.program.subtask_boundaries()
        if not marks:
            starts = [main.entry]
        else:
            starts = [main.entry] + marks[1:]
        bounds = starts[1:] + [1 << 62]
        regions = []
        for k, (lo, hi) in enumerate(zip(starts, bounds)):
            blocks = {a for a in main.blocks if lo <= a < hi}
            if not blocks:
                raise AnalysisError(f"sub-task region {k} is empty")
            next_entry = bounds[k] if k < len(starts) - 1 else None
            for addr in blocks:
                for _kind, succ in main.blocks[addr].successors:
                    if succ is None:
                        continue
                    if succ not in blocks and succ != next_entry:
                        raise AnalysisError(
                            f"control flow crosses sub-task boundary: "
                            f"{addr:#x} -> {succ:#x}"
                        )
            forest = self.loops[main.entry]
            loops = [
                loop
                for loop in forest.roots
                if loop.header in blocks
            ]
            for loop in loops:
                if not loop.blocks <= blocks:
                    raise AnalysisError(
                        f"loop at {loop.header:#x} spans sub-task regions"
                    )
            regions.append(
                {
                    "index": k,
                    "entry": starts[k],
                    "blocks": blocks,
                    "loops": loops,
                    "next": next_entry,
                }
            )
        return regions

    # -- instruction-address closures (for cache scopes) ----------------------------

    def func_addr_closure(self, entry: int) -> frozenset[int]:
        """Instruction addresses of a function plus transitive callees."""
        cached = self._func_addrs_cache.get(entry)
        if cached is not None:
            return cached
        fcfg = self.cfg.functions[entry]
        addrs: set[int] = set()
        for block in fcfg.blocks.values():
            for inst in block.instructions:
                addrs.add(inst.addr)
        self._func_addrs_cache[entry] = frozenset(addrs)  # break cycles safely
        for callee in self.cfg.call_graph[entry]:
            addrs |= self.func_addr_closure(callee)
        result = frozenset(addrs)
        self._func_addrs_cache[entry] = result
        return result

    def blocks_addr_closure(self, fcfg: FunctionCFG, blocks: set[int]) -> set[int]:
        """Instruction addresses of ``blocks`` plus callees they invoke."""
        addrs: set[int] = set()
        for addr in blocks:
            block = fcfg.blocks[addr]
            for inst in block.instructions:
                addrs.add(inst.addr)
            if block.call_target is not None:
                addrs |= self.func_addr_closure(block.call_target)
        return addrs

    def scope_cache_info(self, key, fcfg: FunctionCFG, blocks: set[int]) -> ScopeCacheInfo:
        if key not in self._scope_info_cache:
            addrs = self.blocks_addr_closure(fcfg, blocks)
            self._scope_info_cache[key] = scope_info(addrs, self.cache_config)
        return self._scope_info_cache[key]


def scope_topo_order(
    fcfg: FunctionCFG,
    node_of: dict[int, object],
    entry: int,
    backedge_header: int | None,
) -> list[object]:
    """Topological order of scope nodes (back/exit edges ignored).

    Nodes are ``("block", addr)`` or ``("loop", header)`` as mapped by
    ``node_of``.  Shared by the static analyzer's scope walk and the
    model-checking engine, so both process exactly the same DAG.
    """

    def successors(node) -> set[object]:
        kind, addr = node
        if kind == "loop":
            # exits of the loop: edges from its blocks leaving the loop
            loop_blocks = {
                a for a, n in node_of.items() if n == node
            }
            out: set[object] = set()
            for a in loop_blocks:
                for _k, succ in fcfg.blocks[a].successors:
                    if (
                        succ is not None
                        and succ not in loop_blocks
                        and succ != backedge_header
                        and succ in node_of
                    ):
                        out.add(node_of[succ])
            return out
        out = set()
        for _k, succ in fcfg.blocks[addr].successors:
            if (
                succ is not None
                and succ != backedge_header
                and succ in node_of
            ):
                target = node_of[succ]
                if target != node:
                    out.add(target)
        return out

    start = node_of[entry]
    seen: set[object] = set()
    post: list[object] = []

    def dfs(node) -> None:
        stack = [(node, iter(sorted(successors(node))))]
        seen.add(node)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(sorted(successors(nxt)))))
                    advanced = True
                    break
            if not advanced:
                post.append(current)
                stack.pop()

    dfs(start)
    return list(reversed(post))


class _Run:
    """One analysis pass at a fixed memory-stall cycle count.

    The ``_fm_charge`` / ``_finish`` hooks isolate the two numeric
    decisions the pass makes beyond the shared recurrence — the
    first-miss charge at scope entry and the drained-pipeline frontier at
    region exit.  The seeded-unsoundness corpus subclasses them to build
    deliberately broken analyzers the differential oracle must catch.
    """

    def __init__(self, analyzer: WCETAnalyzer, stall: int):
        self.a = analyzer
        self.stall = stall
        self.shift = analyzer.cache_config.block_shift

    def _fm_charge(self, count: int) -> int:
        """Cycles charged for ``count`` first-miss blocks at scope entry."""
        return self.stall * count

    def _finish(self, state: PathState) -> int:
        """Region WCET from its merged exit state (full pipeline drain)."""
        return state.frontier

    def region_cycles(self) -> list[int]:
        main = self.a.cfg.entry_function
        cycles: list[int] = []
        for region in self.a._regions:
            info = self.a.scope_cache_info(
                ("region", region["index"]), main, region["blocks"]
            )
            state = PathState.fresh().shift(self._fm_charge(len(info.persistent)))
            covered = set(info.persistent)
            back, externals = self._walk(
                main,
                region["blocks"],
                region["loops"],
                region["entry"],
                state,
                covered,
                backedge_header=None,
            )
            assert back is None
            final: PathState | None = None
            for target, st in externals.items():
                if target is not None and target != region["next"]:
                    raise AnalysisError(
                        f"region {region['index']} exits to unexpected "
                        f"{target:#x}"
                    )
                final = merge(final, st)
            if final is None:
                raise AnalysisError(f"region {region['index']} has no exit")
            cycles.append(self._finish(final))
        return cycles

    # -- scope walking -----------------------------------------------------------

    def _walk(
        self,
        fcfg: FunctionCFG,
        members: set[int],
        level_loops: list[Loop],
        entry: int,
        state: PathState,
        covered: set[int],
        backedge_header: int | None,
    ) -> tuple[PathState | None, dict[int | None, PathState]]:
        """Propagate pipeline states through one scope's DAG.

        Returns (merged back-edge state or None, external exits keyed by
        target address — None for function returns / halt).
        """
        node_of: dict[int, object] = {}
        for loop in level_loops:
            for addr in loop.blocks:
                node_of[addr] = ("loop", loop.header)
        for addr in members:
            node_of.setdefault(addr, ("block", addr))
        loops_by_header = {loop.header: loop for loop in level_loops}

        order = scope_topo_order(fcfg, node_of, entry, backedge_header)
        in_states: dict[object, PathState] = {node_of[entry]: state}
        back_state: PathState | None = None
        externals: dict[int | None, PathState] = {}

        def deliver(target: int | None, st: PathState) -> None:
            nonlocal back_state
            if target is not None and target == backedge_header:
                back_state = merge(back_state, st)
            elif target is None or target not in node_of:
                externals[target] = merge(externals.get(target), st)
            else:
                node = node_of[target]
                in_states[node] = merge(in_states.get(node), st)

        for node in order:
            st = in_states.pop(node, None)
            if st is None:
                continue
            kind, addr = node
            if kind == "loop":
                for target, out in self._loop(
                    fcfg, loops_by_header[addr], st, covered
                ).items():
                    deliver(target, out)
            else:
                for target, out in self._block(fcfg, fcfg.blocks[addr], st, covered):
                    deliver(target, out)
        return back_state, externals

    def _block(
        self,
        fcfg: FunctionCFG,
        block: BasicBlock,
        state: PathState,
        covered: set[int],
    ) -> list[tuple[int | None, PathState]]:
        """Walk one basic block; returns per-edge (target, state) pairs."""
        insts = block.instructions
        for inst in insts[:-1]:
            step(state, inst, covered, self.shift, self.stall)
        last = insts[-1]
        if block.call_target is not None:
            step(state, last, covered, self.shift, self.stall)
            state = self._function(block.call_target, state, covered)
            return [(block.successors[0][1], state)]
        if len(block.successors) > 1:
            results = []
            for kind, target in block.successors:
                branch_state = state.clone()
                step(
                    branch_state, last, covered, self.shift, self.stall,
                    control_penalty=edge_penalty(last, kind),
                )
                results.append((target, branch_state))
            return results
        kind, target = block.successors[0]
        step(
            state, last, covered, self.shift, self.stall,
            control_penalty=edge_penalty(last, kind),
        )
        return [(target, state)]

    def _function(
        self, entry: int, state: PathState, covered: set[int]
    ) -> PathState:
        """Analysis-time inlining: thread the state through the callee."""
        fcfg = self.a.cfg.functions[entry]
        forest = self.a.loops[entry]
        back, externals = self._walk(
            fcfg,
            set(fcfg.blocks),
            forest.roots,
            entry,
            state,
            covered,
            backedge_header=None,
        )
        assert back is None
        result: PathState | None = None
        for target, st in externals.items():
            if target is not None:
                raise AnalysisError(
                    f"function {entry:#x} escapes to {target:#x}"
                )
            result = merge(result, st)
        if result is None:
            raise AnalysisError(f"function {entry:#x} never returns")
        return result

    def _loop(
        self,
        fcfg: FunctionCFG,
        loop: Loop,
        state: PathState,
        covered: set[int],
    ) -> dict[int | None, PathState]:
        """Fix-point loop timing (paper §3.3).

        Iterates the loop body with the threaded pipeline state until the
        per-iteration cost stabilizes, replicates the remaining iterations
        at the fixed cost, then runs the exit paths.
        """
        info = self.a.scope_cache_info(("loop", loop.header), fcfg, loop.blocks)
        fresh = info.persistent - covered
        state = state.shift(self._fm_charge(len(fresh)))
        inner_covered = covered | fresh

        current = state
        costs: list[int] = []
        done = 0
        converged = False
        while done < loop.bound:
            back, _ = self._walk(
                fcfg,
                loop.blocks,
                loop.children,
                loop.header,
                current.clone(),
                inner_covered,
                backedge_header=loop.header,
            )
            if back is None:
                break  # body always leaves the loop
            costs.append(back.frontier - current.frontier)
            current = back
            done += 1
            if len(costs) >= 2 and costs[-1] == costs[-2]:
                converged = True
                break
            if done >= self.a.fixpoint_cap:
                break
        if done < loop.bound and done > 0:
            per_iter = costs[-1] if converged else max(costs)
            current = current.shift(per_iter * (loop.bound - done))
        _, externals = self._walk(
            fcfg,
            loop.blocks,
            loop.children,
            loop.header,
            current,
            inner_covered,
            backedge_header=loop.header,
        )
        if not externals:
            raise AnalysisError(f"loop at {loop.header:#x} has no exit")
        return externals


WCETAnalyzer.run_cls = _Run
