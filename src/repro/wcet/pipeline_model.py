"""Static VISA pipeline model.

Walks basic blocks through the *same* timing recurrence the dynamic
in-order core uses (:mod:`repro.pipelines.inorder_engine`), with worst-case
inputs:

* I-cache: a reference misses at every cache-block transition unless the
  block is covered by a persistence (first-miss) charge of an active scope,
* D-cache: hits in the pipeline model; worst-case miss stalls are added as
  padding (paper §3.3 last paragraph),
* branches: the executed edge determines whether the static BTFN predictor
  mispredicts — exactly the rule the dynamic core applies,
* control-flow joins: pipeline states merge by *component-wise maximum*,
  which is a sound upper bound because the timing recurrence is monotone
  in every state component (only ``max`` and ``+`` of non-negative
  quantities).  This gives linear-time analysis without path enumeration,
  while the fix-point machinery in :mod:`repro.wcet.analyzer` recovers the
  per-iteration tightness the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.pipelines.inorder_engine import TimingState, advance


@dataclass
class PathState:
    """Pipeline state threaded along static paths.

    Attributes:
        timing: The shared in-order recurrence state (absolute cycles from
            the scope origin).
        cache_block: Cache block of the most recently fetched instruction
            (None = unknown, e.g. right after a join of divergent paths).
    """

    timing: TimingState
    cache_block: int | None = None

    @classmethod
    def fresh(cls) -> "PathState":
        return cls(timing=TimingState())

    def clone(self) -> "PathState":
        return PathState(timing=self.timing.clone(), cache_block=self.cache_block)

    def shift(self, cycles: int) -> "PathState":
        """Charge ``cycles`` of stall before continuing (e.g. fm misses)."""
        if cycles == 0:
            return self
        return PathState(
            timing=self.timing.shift(cycles), cache_block=self.cache_block
        )

    @property
    def frontier(self) -> int:
        """Completion time of everything issued so far (last writeback)."""
        return self.timing.mem_free + 1


def merge_timing(ta: TimingState, tb: TimingState) -> TimingState:
    """Component-wise maximum of two timing states (sound upper bound).

    Shared by the static analyzer's path joins and the model-checking
    engine's state subsumption — both rely on the recurrence being
    monotone in every component.
    """
    reg_ready = dict(ta.reg_ready)
    for key, value in tb.reg_ready.items():
        if reg_ready.get(key, -1) < value:
            reg_ready[key] = value
    return TimingState(
        last_fetch=max(ta.last_fetch, tb.last_fetch),
        redirect=max(ta.redirect, tb.redirect),
        ex_free=max(ta.ex_free, tb.ex_free),
        mem_free=max(ta.mem_free, tb.mem_free),
        prev_mem_start=max(ta.prev_mem_start, tb.prev_mem_start),
        front_occupancy=tuple(
            max(x, y) for x, y in zip(ta.front_occupancy, tb.front_occupancy)
        ),
        reg_ready=reg_ready,
    )


def merge(a: PathState | None, b: PathState) -> PathState:
    """Sound join: component-wise maximum of two pipeline states."""
    if a is None:
        return b.clone()
    merged = merge_timing(a.timing, b.timing)
    cache_block = a.cache_block if a.cache_block == b.cache_block else None
    return PathState(timing=merged, cache_block=cache_block)


def step(
    state: PathState,
    inst: Instruction,
    covered_blocks: set[int],
    block_shift: int,
    stall: int,
    control_penalty: bool = False,
) -> None:
    """Advance ``state`` by one instruction with worst-case cache inputs."""
    block = inst.addr >> block_shift
    icache_extra = 0
    if block != state.cache_block:
        if block not in covered_blocks:
            icache_extra = stall
        state.cache_block = block
    advance(state.timing, inst, icache_extra, 0, control_penalty)


def edge_penalty(inst: Instruction, kind: str) -> bool:
    """Does the VISA's static BTFN predictor mispredict this edge?

    Mirrors the dynamic core: backward branches predicted taken, forward
    not-taken; indirect jumps (returns) always stall fetch.
    """
    if inst.is_branch:
        predicted_taken = inst.is_backward_branch()
        actually_taken = kind == "taken"
        return predicted_taken != actually_taken
    if inst.is_indirect_jump:
        return True
    return False
