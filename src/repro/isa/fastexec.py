"""Specialized (threaded-code) instruction executors for the hot path.

:func:`repro.isa.semantics.execute` dispatches through a dict of handlers
and allocates an :class:`~repro.isa.semantics.ExecResult` per instruction.
That is the right *reference* semantics — one obvious implementation both
pipelines share — but it dominates the interpreter's per-instruction cost.

This module compiles each decoded instruction, once at program load, into a
bound closure specialized to its opcode and operands (classic threaded-code
technique).  The closure captures the register indices and immediates, so
executing an instruction is a single call with no dispatch, no field
decoding, and no result-object allocation.  Instructions are grouped into a
handful of *kinds* so the pipeline loops can branch once on an int instead
of testing ``is_branch`` / ``is_mem`` / ``result.target is None`` per
instruction.

The reference ``execute()`` stays authoritative: a differential property
test (``tests/test_fastexec.py``) checks every specialized executor against
it on randomized register files, and the pipelines keep a reference run
path for end-to-end comparison.

Plan entry layout (one tuple per instruction, in address order)::

    (kind, ex, src_keys, dkey, wbank, dnum, nsrc, lat, npc, starget,
     ptaken, inst)

    kind     one of the K_* constants below
    ex       specialized closure (signature depends on kind; None for
             K_JUMP / K_HALT):
               K_ALU      ex(ir, fr) -> destination value
               K_LOAD     ex(ir)     -> effective address (u32)
               K_STORE    ex(ir, fr) -> (effective address, store value)
               K_BRANCH   ex(ir)     -> taken (bool)
               K_INDIRECT ex(ir)     -> target address (u32)
    src_keys timing source-register keys (int reg n -> n, fp reg n -> 32+n)
    dkey     timing destination key (includes r0, like the reference
             timing model) or -1 when the instruction has no destination
    wbank    architectural write target: 0 none (or int r0), 1 int, 2 fp
    dnum     destination register number for the architectural write
    nsrc     len(inst.sources), for the regread event counter
    lat      execution latency in cycles
    npc      inst.addr + 4 (fall-through PC; also the JAL/JALR link value)
    starget  statically-known control target: branch taken-target or
             direct-jump target; -1 when not statically known
    ptaken   BTFN static prediction for conditional branches
    inst     the decoded Instruction (for MMIO paths and diagnostics)
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import _fdiv, _fsqrt, _trunc_div, _trunc_rem

# Instruction kinds, dispatched on by the pipeline hot loops.
K_ALU = 0
K_LOAD = 1
K_STORE = 2
K_BRANCH = 3
K_JUMP = 4
K_INDIRECT = 5
K_HALT = 6

_M = 0xFFFFFFFF
_S = 0x80000000

FastInst = tuple  # see module docstring for the field layout


def _key(ref: tuple[str, int]) -> int:
    """Flatten a ("i"|"f", num) register reference to one array index."""
    bank, num = ref
    return num if bank == "i" else 32 + num


# --- closure factories -------------------------------------------------------
#
# Each factory returns the specialized executor for one instruction.  The
# arithmetic mirrors repro.isa.semantics exactly; ``((x + _S) & _M) - _S``
# is ``to_s32(x)`` inlined (wrap to signed 32-bit two's complement).

def _alu3(py_op):
    def make(inst):
        s, t = inst.rs, inst.rt
        if py_op == "+":
            return lambda ir, fr: ((ir[s] + ir[t] + _S) & _M) - _S
        if py_op == "-":
            return lambda ir, fr: ((ir[s] - ir[t] + _S) & _M) - _S
        if py_op == "*":
            return lambda ir, fr: ((ir[s] * ir[t] + _S) & _M) - _S
        if py_op == "&":
            return lambda ir, fr: (((ir[s] & ir[t]) + _S) & _M) - _S
        if py_op == "|":
            return lambda ir, fr: (((ir[s] | ir[t]) + _S) & _M) - _S
        if py_op == "^":
            return lambda ir, fr: (((ir[s] ^ ir[t]) + _S) & _M) - _S
        raise AssertionError(py_op)

    return make


def _make_div(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: ((_trunc_div(ir[s], ir[t]) + _S) & _M) - _S


def _make_rem(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: ((_trunc_rem(ir[s], ir[t]) + _S) & _M) - _S


def _make_nor(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: ((~(ir[s] | ir[t]) + _S) & _M) - _S


def _make_slt(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: 1 if ir[s] < ir[t] else 0


def _make_sltu(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: 1 if (ir[s] & _M) < (ir[t] & _M) else 0


def _shift_imm(direction):
    def make(inst):
        t, sh = inst.rt, inst.shamt
        if direction == "sll":
            return lambda ir, fr: ((((ir[t] & _M) << sh) + _S) & _M) - _S
        if direction == "srl":
            return lambda ir, fr: ((((ir[t] & _M) >> sh) + _S) & _M) - _S
        # sra: arithmetic shift of the sign-interpreted value; the result
        # stays inside s32 so no outer wrap is needed.
        return lambda ir, fr: (((ir[t] + _S) & _M) - _S) >> sh

    return make


def _shift_var(direction):
    def make(inst):
        s, t = inst.rs, inst.rt
        if direction == "sll":
            return lambda ir, fr: (
                (((ir[t] & _M) << (ir[s] & 0x1F)) + _S) & _M
            ) - _S
        if direction == "srl":
            return lambda ir, fr: (
                (((ir[t] & _M) >> (ir[s] & 0x1F)) + _S) & _M
            ) - _S
        return lambda ir, fr: (((ir[t] + _S) & _M) - _S) >> (ir[s] & 0x1F)

    return make


def _make_addi(inst):
    s, i = inst.rs, inst.imm
    return lambda ir, fr: ((ir[s] + i + _S) & _M) - _S


def _make_slti(inst):
    s, i = inst.rs, inst.imm
    return lambda ir, fr: 1 if ir[s] < i else 0


def _make_sltiu(inst):
    s, u = inst.rs, inst.imm & _M
    return lambda ir, fr: 1 if (ir[s] & _M) < u else 0


def _make_andi(inst):
    # to_u32(a) & imm16 < 2^16, so the signed wrap is the identity.
    s, u = inst.rs, inst.imm & 0xFFFF
    return lambda ir, fr: ir[s] & u


def _make_ori(inst):
    s, u = inst.rs, inst.imm & 0xFFFF
    return lambda ir, fr: (((ir[s] & _M) | u) + _S & _M) - _S


def _make_xori(inst):
    s, u = inst.rs, inst.imm & 0xFFFF
    return lambda ir, fr: (((ir[s] & _M) ^ u) + _S & _M) - _S


def _make_lui(inst):
    value = (((inst.imm & 0xFFFF) << 16) + _S & _M) - _S
    return lambda ir, fr: value


def _fp3(py_op):
    def make(inst):
        s, t = inst.rs, inst.rt
        if py_op == "+":
            return lambda ir, fr: fr[s] + fr[t]
        if py_op == "-":
            return lambda ir, fr: fr[s] - fr[t]
        if py_op == "*":
            return lambda ir, fr: fr[s] * fr[t]
        raise AssertionError(py_op)

    return make


def _make_fdiv(inst):
    s, t = inst.rs, inst.rt
    return lambda ir, fr: _fdiv(fr[s], fr[t])


def _make_fsqrt(inst):
    s = inst.rs
    return lambda ir, fr: _fsqrt(fr[s])


def _make_fabs(inst):
    s = inst.rs
    return lambda ir, fr: abs(fr[s])


def _make_fneg(inst):
    s = inst.rs
    return lambda ir, fr: -fr[s]


def _make_fmov(inst):
    s = inst.rs
    return lambda ir, fr: fr[s]


def _fcmp(py_op):
    def make(inst):
        s, t = inst.rs, inst.rt
        if py_op == "==":
            return lambda ir, fr: 1 if fr[s] == fr[t] else 0
        if py_op == "<":
            return lambda ir, fr: 1 if fr[s] < fr[t] else 0
        return lambda ir, fr: 1 if fr[s] <= fr[t] else 0

    return make


def _make_itof(inst):
    s = inst.rs
    return lambda ir, fr: float(ir[s])


def _make_ftoi(inst):
    s = inst.rs
    return lambda ir, fr: ((int(fr[s]) + _S) & _M) - _S


def _make_load(inst):
    s, i = inst.rs, inst.imm
    return lambda ir: (ir[s] + i) & _M


def _make_store_int(inst):
    s, t, i = inst.rs, inst.rt, inst.imm
    return lambda ir, fr: ((ir[s] + i) & _M, ir[t])


def _make_store_fp(inst):
    s, t, i = inst.rs, inst.rt, inst.imm
    return lambda ir, fr: ((ir[s] + i) & _M, fr[t])


def _branch(cond):
    def make(inst):
        s, t = inst.rs, inst.rt
        if cond == "==":
            return lambda ir: ir[s] == ir[t]
        if cond == "!=":
            return lambda ir: ir[s] != ir[t]
        if cond == "<=0":
            return lambda ir: ir[s] <= 0
        if cond == ">0":
            return lambda ir: ir[s] > 0
        if cond == "<":
            return lambda ir: ir[s] < ir[t]
        return lambda ir: ir[s] >= ir[t]

    return make


def _make_jr(inst):
    s = inst.rs
    return lambda ir: ir[s] & _M


_ALU_MAKERS = {
    Op.ADD: _alu3("+"),
    Op.SUB: _alu3("-"),
    Op.MUL: _alu3("*"),
    Op.DIV: _make_div,
    Op.REM: _make_rem,
    Op.AND: _alu3("&"),
    Op.OR: _alu3("|"),
    Op.XOR: _alu3("^"),
    Op.NOR: _make_nor,
    Op.SLT: _make_slt,
    Op.SLTU: _make_sltu,
    Op.SLL: _shift_imm("sll"),
    Op.SRL: _shift_imm("srl"),
    Op.SRA: _shift_imm("sra"),
    Op.SLLV: _shift_var("sll"),
    Op.SRLV: _shift_var("srl"),
    Op.SRAV: _shift_var("sra"),
    Op.ADDI: _make_addi,
    Op.SLTI: _make_slti,
    Op.SLTIU: _make_sltiu,
    Op.ANDI: _make_andi,
    Op.ORI: _make_ori,
    Op.XORI: _make_xori,
    Op.LUI: _make_lui,
    Op.FADD: _fp3("+"),
    Op.FSUB: _fp3("-"),
    Op.FMUL: _fp3("*"),
    Op.FDIV: _make_fdiv,
    Op.FSQRT: _make_fsqrt,
    Op.FABS: _make_fabs,
    Op.FNEG: _make_fneg,
    Op.FMOV: _make_fmov,
    Op.FEQ: _fcmp("=="),
    Op.FLT_: _fcmp("<"),
    Op.FLE: _fcmp("<="),
    Op.ITOF: _make_itof,
    Op.FTOI: _make_ftoi,
}

_BRANCH_MAKERS = {
    Op.BEQ: _branch("=="),
    Op.BNE: _branch("!="),
    Op.BLEZ: _branch("<=0"),
    Op.BGTZ: _branch(">0"),
    Op.BLT: _branch("<"),
    Op.BGE: _branch(">="),
}


def compile_inst(inst: Instruction) -> FastInst:
    """Compile one placed instruction into its fast-plan entry."""
    op = inst.op
    src_keys = tuple(_key(ref) for ref in inst.sources)
    dest = inst.dest
    dkey = _key(dest) if dest is not None else -1
    wbank = 0
    dnum = 0
    if dest is not None:
        bank, num = dest
        if bank == "i":
            if num != 0:
                wbank, dnum = 1, num
        else:
            wbank, dnum = 2, num
    nsrc = len(src_keys)
    lat = inst.latency
    npc = inst.addr + 4

    if op is Op.HALT:
        return (K_HALT, None, src_keys, dkey, wbank, dnum, nsrc, lat,
                npc, -1, False, inst)
    if inst.is_branch:
        return (K_BRANCH, _BRANCH_MAKERS[op](inst), src_keys, dkey, wbank,
                dnum, nsrc, lat, npc, inst.branch_target(),
                inst.is_backward_branch(), inst)
    if inst.is_direct_jump:  # J / JAL (JAL links npc via wbank/dnum)
        return (K_JUMP, None, src_keys, dkey, wbank, dnum, nsrc, lat,
                npc, inst.jump_target(), False, inst)
    if inst.is_indirect_jump:  # JR / JALR
        return (K_INDIRECT, _make_jr(inst), src_keys, dkey, wbank, dnum,
                nsrc, lat, npc, -1, False, inst)
    if inst.is_load:
        return (K_LOAD, _make_load(inst), src_keys, dkey, wbank, dnum,
                nsrc, lat, npc, -1, False, inst)
    if inst.is_store:
        maker = _make_store_fp if op is Op.FSW else _make_store_int
        return (K_STORE, maker(inst), src_keys, dkey, wbank, dnum,
                nsrc, lat, npc, -1, False, inst)
    return (K_ALU, _ALU_MAKERS[op](inst), src_keys, dkey, wbank, dnum,
            nsrc, lat, npc, -1, False, inst)


def build_plan(instructions: list[Instruction]) -> list[FastInst]:
    """Compile a program's decoded instructions into a fast plan."""
    return [compile_inst(inst) for inst in instructions]


__all__ = [
    "K_ALU", "K_LOAD", "K_STORE", "K_BRANCH", "K_JUMP", "K_INDIRECT",
    "K_HALT", "FastInst", "compile_inst", "build_plan",
]
