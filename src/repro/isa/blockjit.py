"""Basic-block JIT: compile straight-line runs of the fast plan to Python.

The PR 1 threaded-code plan (:mod:`repro.isa.fastexec`) still pays one
Python call per instruction plus the interpreter's per-instruction
bookkeeping.  This module goes one step further: it groups the plan into
basic blocks (boundaries from :func:`repro.wcet.cfg.build_cfg`, with a
linear fallback when the CFG analysis rejects a program) and emits one
specialized Python function *per block* via ``compile()``/``exec``.

Within a generated block:

* register values live in locals (promoted on first read, rebound on
  write) and are spilled back to the architectural arrays only at block
  exit or immediately before any operation that can raise (MMIO access,
  misaligned/text-range data access, DIV/REM/FDIV/FSQRT/FTOI),
* the in-order timing recurrence and the OOO constraint system are
  emitted inline with SSA-style names, mirroring the hand-specialized
  hot loops in :mod:`repro.pipelines.inorder` and
  :mod:`repro.pipelines.ooo.core` statement for statement, and
* event counters whose increments are statically known (fetch, regread,
  regwrite, retired) become literal offsets baked into the exit writes.

The contract is *bit-identical observable state*: architectural
registers and memory, cycle counts, cache statistics, event counters,
watchdog/exception cycles, and fault side effects all match the
interpreter fast path (and therefore ``run_reference``) exactly.  The
single documented exclusion: a ``TypeError`` raised by arithmetic on a
float-contaminated integer register (already undefined behaviour in the
reference paths) may leave partially-updated batched state.

The compiled block table is memoized on the :class:`~repro.isa.program.
Program` and persisted under ``.repro_cache/blockjit/`` keyed by the
program digest, cache geometry, and pipeline parameters (same
``FORMAT_VERSION``/sha256 mechanism as the run cache).  Opt-out follows
the PR 4 pattern: ``REPRO_JIT=0`` or ``--no-jit`` threaded as an
explicit parameter into :func:`jit_override` — never ``os.environ``
mutation.
"""

from __future__ import annotations

import base64
import hashlib
import json
import marshal
import os
import re
import sys
import weakref
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import astuple
from typing import TYPE_CHECKING, Any, Callable, NamedTuple

from repro.errors import AnalysisError, ReproError, SimulationError
from repro.isa import layout
from repro.isa.fastexec import (
    K_ALU,
    K_BRANCH,
    K_HALT,
    K_INDIRECT,
    K_JUMP,
    K_LOAD,
    K_STORE,
)
from repro.isa.opcodes import Op
from repro.isa.semantics import _fdiv, _fsqrt, _trunc_div, _trunc_rem
from repro.pipelines.inorder_engine import BRANCH_PENALTY, _FRONT_DEPTH
from repro.wcet.cfg import build_cfg

if TYPE_CHECKING:
    from pathlib import Path

    from repro.isa.program import Program

#: Bump when the emitted code changes shape; stale disk entries miss.
CODEGEN_VERSION = 2

_M = 0xFFFFFFFF
_S = 0x80000000
_MMIO = layout.MMIO_BASE
_REDIRECT_OFFSET = BRANCH_PENALTY - _FRONT_DEPTH + 1
_RUNAWAY = 200_000_000

# Event-scheduler width-map hygiene: every _PRUNE_STRIDE committed
# instructions, cycle-keyed dispatch/issue/port maps larger than
# _PRUNE_MIN entries are rebuilt with dead (pre-frontier) keys dropped.
_PRUNE_STRIDE = 8192
_PRUNE_MIN = 512

_CONTROL_KINDS = (K_BRANCH, K_JUMP, K_INDIRECT, K_HALT)

#: Live BlockTables (weak): ``disk_cache_stats`` aggregates their trace
#: runtime counters so ``repro cache stats`` can show completions and
#: the side-exit-pc breakdown for the current process.
_LIVE_TABLES: "weakref.WeakSet[Any]" = weakref.WeakSet()

BlockFn = Callable[..., Any]
BlockEntry = tuple[BlockFn, int]

# --- tier selection (REPRO_JIT_TIER / REPRO_JIT / --no-jit) ------------------

#: Recognized execution tiers, slowest to fastest.
TIERS = ("off", "block", "trace")

#: Tier used when nothing (env, override) says otherwise.  The block
#: tier: trace formation pays seconds of cold codegen per program and
#: engine, which only amortizes on long or cache-warm runs, so the
#: trace tier is opt-in (``REPRO_JIT_TIER=trace`` / ``--jit-tier``).
DEFAULT_TIER = "block"

# Holds either a tier name, a legacy boolean (from jit_override), or None.
_JIT_OVERRIDE: ContextVar[str | bool | None] = ContextVar(
    "repro_jit", default=None
)


def _env_tier() -> str:
    """Tier selected by the environment alone.

    ``REPRO_JIT_TIER`` (off/block/trace) supersedes the boolean
    ``REPRO_JIT``; an unrecognized value falls through to the legacy
    flag, and ``REPRO_JIT=0`` still disables compilation entirely.
    """
    tier = os.environ.get("REPRO_JIT_TIER", "").strip().lower()
    if tier in TIERS:
        return tier
    if os.environ.get("REPRO_JIT", "") == "0":
        return "off"
    return DEFAULT_TIER


def jit_tier() -> str:
    """The active JIT tier: ``"off"``, ``"block"``, or ``"trace"``.

    An active :func:`tier_override`/:func:`jit_override` wins; otherwise
    the environment decides (see :func:`_env_tier`).  A legacy boolean
    override maps ``False`` to ``"off"`` and ``True`` to the environment
    tier, promoted to the default when the environment says off.
    """
    override = _JIT_OVERRIDE.get()
    if override is None:
        return _env_tier()
    if override is False:
        return "off"
    if override is True:
        tier = _env_tier()
        return tier if tier != "off" else DEFAULT_TIER
    return override


def jit_enabled() -> bool:
    """True when block/trace compilation should be used for full runs."""
    return jit_tier() != "off"


@contextmanager
def tier_override(value: str | None) -> Iterator[None]:
    """Scoped tier override (``None`` defers to the environment).

    ContextVar-based like ``runcache.no_cache_override`` so concurrent
    in-process callers never observe each other's setting.
    """
    if value is not None and value not in TIERS:
        raise ValueError(f"unknown JIT tier {value!r}")
    token = _JIT_OVERRIDE.set(value)
    try:
        yield
    finally:
        _JIT_OVERRIDE.reset(token)


@contextmanager
def jit_override(value: bool | None) -> Iterator[None]:
    """Scoped JIT on/off override (``None`` defers to the environment).

    The boolean PR 5 interface, kept for ``--no-jit`` and existing
    callers: ``False`` forces the interpreter, ``True`` forces the
    environment-selected tier (default tier when the environment says
    off), ``None`` defers entirely.
    """
    token = _JIT_OVERRIDE.set(value)
    try:
        yield
    finally:
        _JIT_OVERRIDE.reset(token)


# --- expression text builders (must mirror fastexec closures exactly) --------


class _Regs:
    """Register promotion tracker: flat key (int n -> n, fp n -> 32+n).

    Each register is represented by TEXT: a stable local name (``R5`` /
    ``F5``), an int literal (constant-folded writes), or its home array
    slot before first use.  Reads of ``r0`` fold to ``0``.  Writes mark
    the key dirty; :meth:`spill` emits the home-array writebacks.
    """

    def __init__(self, lines: list[str]) -> None:
        self._lines = lines
        # key -> ("name", text) | ("const", value)
        self._val: dict[int, tuple[str, Any]] = {}
        self.dirty: set[int] = set()

    @staticmethod
    def _home(key: int) -> str:
        return f"ir[{key}]" if key < 32 else f"fr[{key - 32}]"

    @staticmethod
    def _name(key: int) -> str:
        return f"R{key}" if key < 32 else f"F{key - 32}"

    def read(self, key: int, ind: str) -> str:
        """Text for the current value of ``key`` (promoting on first read)."""
        if key == 0:
            return "0"
        state = self._val.get(key)
        if state is None:
            name = self._name(key)
            self._lines.append(f"{ind}{name} = {self._home(key)}")
            self._val[key] = ("name", name)
            return name
        if state[0] == "const":
            value = state[1]
            return f"({value})" if value < 0 else str(value)
        return str(state[1])

    def read_const(self, key: int) -> int | None:
        """The statically-known int value of ``key``, if any (r0 -> 0)."""
        if key == 0:
            return 0
        state = self._val.get(key)
        if state is not None and state[0] == "const":
            return int(state[1])
        return None

    def write_name(self, key: int) -> str:
        """Local name to assign ``key``'s new value into (marks dirty)."""
        name = self._name(key)
        self._val[key] = ("name", name)
        self.dirty.add(key)
        return name

    def write_const(self, key: int, value: int) -> None:
        """Record a constant write (no code emitted until spill)."""
        self._val[key] = ("const", value)
        self.dirty.add(key)

    def prepare_write(self, key: int, ind: str) -> None:
        """Materialize ``key``'s *old* value into its home local.

        Needed before a conditional/faulting write site (load dest): a
        sync emitted between :meth:`write_name` and the actual
        assignment spills the local name, which must therefore already
        hold the pre-write architectural value on every path.
        """
        state = self._val.get(key)
        if state is not None and state[0] == "name":
            return
        name = self._name(key)
        if state is None:
            self._lines.append(f"{ind}{name} = {self._home(key)}")
            self._val[key] = ("name", name)
        else:  # pending const: keep the dirty flag, value moves to the local
            value = state[1]
            self._lines.append(f"{ind}{name} = {value}")
            self._val[key] = ("name", name)

    def spill_lines(self, ind: str, commit: bool = False) -> list[str]:
        """Home-array writebacks for every dirty register.

        ``commit`` may only be True for an *unconditional* spill site
        (function-body base indent): every later line is then reached
        only after these writebacks ran, so the dirty set can be
        cleared and later syncs skip registers written before this
        point.  Conditional spill sites (inside an arm) must keep the
        dirty set — the not-taken path never stored the values.
        """
        out = []
        for key in sorted(self.dirty):
            state = self._val[key]
            text = str(state[1]) if state[0] == "const" else state[1]
            out.append(f"{ind}{self._home(key)} = {text}")
        if commit:
            self.dirty.clear()
        return out


#: ALU ops whose generated expression can raise and therefore need a
#: state sync before evaluation (fault-state parity with the reference).
_MAY_RAISE_OPS = frozenset({Op.DIV, Op.REM, Op.FDIV, Op.FSQRT, Op.FTOI})

#: Pure integer ALU ops safe to constant-fold at codegen time by
#: evaluating the *generated expression itself* (so folded values are
#: identical to runtime values by construction).
_FOLDABLE_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT,
    Op.SLTU, Op.SLL, Op.SRL, Op.SRA, Op.SLLV, Op.SRLV, Op.SRAV,
    Op.ADDI, Op.SLTI, Op.SLTIU, Op.ANDI, Op.ORI, Op.XORI, Op.LUI,
})

_FOLD_GLOBALS = {"_M": _M, "_S": _S, "__builtins__": {}}


def _alu_expr(inst: Any, regs: _Regs, ind: str) -> tuple[str, bool]:
    """(expression text, may_raise) for a K_ALU instruction.

    The text mirrors the matching :mod:`repro.isa.fastexec` closure body
    token for token, with register references replaced by the tracker's
    current text.
    """
    op = inst.op

    def ri(num: int) -> str:
        return regs.read(num, ind)

    def rf(num: int) -> str:
        return regs.read(32 + num, ind)

    s, t = inst.rs, inst.rt
    if op is Op.ADD:
        return f"(({ri(s)} + {ri(t)} + _S) & _M) - _S", False
    if op is Op.SUB:
        return f"(({ri(s)} - {ri(t)} + _S) & _M) - _S", False
    if op is Op.MUL:
        return f"(({ri(s)} * {ri(t)} + _S) & _M) - _S", False
    if op is Op.AND:
        return f"((({ri(s)} & {ri(t)}) + _S) & _M) - _S", False
    if op is Op.OR:
        return f"((({ri(s)} | {ri(t)}) + _S) & _M) - _S", False
    if op is Op.XOR:
        return f"((({ri(s)} ^ {ri(t)}) + _S) & _M) - _S", False
    if op is Op.DIV:
        return f"((_trunc_div({ri(s)}, {ri(t)}) + _S) & _M) - _S", True
    if op is Op.REM:
        return f"((_trunc_rem({ri(s)}, {ri(t)}) + _S) & _M) - _S", True
    if op is Op.NOR:
        return f"((~({ri(s)} | {ri(t)}) + _S) & _M) - _S", False
    if op is Op.SLT:
        return f"1 if {ri(s)} < {ri(t)} else 0", False
    if op is Op.SLTU:
        return f"1 if ({ri(s)} & _M) < ({ri(t)} & _M) else 0", False
    if op is Op.SLL:
        return f"(((({ri(t)} & _M) << {inst.shamt}) + _S) & _M) - _S", False
    if op is Op.SRL:
        return f"(((({ri(t)} & _M) >> {inst.shamt}) + _S) & _M) - _S", False
    if op is Op.SRA:
        return f"((({ri(t)} + _S) & _M) - _S) >> {inst.shamt}", False
    if op is Op.SLLV:
        return f"(((({ri(t)} & _M) << ({ri(s)} & 0x1F)) + _S) & _M) - _S", False
    if op is Op.SRLV:
        return f"(((({ri(t)} & _M) >> ({ri(s)} & 0x1F)) + _S) & _M) - _S", False
    if op is Op.SRAV:
        return f"((({ri(t)} + _S) & _M) - _S) >> ({ri(s)} & 0x1F)", False
    if op is Op.ADDI:
        return f"(({ri(s)} + {inst.imm} + _S) & _M) - _S", False
    if op is Op.SLTI:
        return f"1 if {ri(s)} < {inst.imm} else 0", False
    if op is Op.SLTIU:
        return f"1 if ({ri(s)} & _M) < {inst.imm & _M} else 0", False
    if op is Op.ANDI:
        return f"{ri(s)} & {inst.imm & 0xFFFF}", False
    if op is Op.ORI:
        return f"((({ri(s)} & _M) | {inst.imm & 0xFFFF}) + _S & _M) - _S", False
    if op is Op.XORI:
        return f"((({ri(s)} & _M) ^ {inst.imm & 0xFFFF}) + _S & _M) - _S", False
    if op is Op.LUI:
        return str((((inst.imm & 0xFFFF) << 16) + _S & _M) - _S), False
    if op is Op.FADD:
        return f"{rf(s)} + {rf(t)}", False
    if op is Op.FSUB:
        return f"{rf(s)} - {rf(t)}", False
    if op is Op.FMUL:
        return f"{rf(s)} * {rf(t)}", False
    if op is Op.FDIV:
        return f"_fdiv({rf(s)}, {rf(t)})", True
    if op is Op.FSQRT:
        return f"_fsqrt({rf(s)})", True
    if op is Op.FABS:
        return f"abs({rf(s)})", False
    if op is Op.FNEG:
        return f"-{rf(s)}", False
    if op is Op.FMOV:
        return f"{rf(s)}", False
    if op is Op.FEQ:
        return f"1 if {rf(s)} == {rf(t)} else 0", False
    if op is Op.FLT_:
        return f"1 if {rf(s)} < {rf(t)} else 0", False
    if op is Op.FLE:
        return f"1 if {rf(s)} <= {rf(t)} else 0", False
    if op is Op.ITOF:
        return f"float({ri(s)})", False
    if op is Op.FTOI:
        return f"((int({rf(s)}) + _S) & _M) - _S", True
    raise AssertionError(f"unhandled ALU op {op}")


def _alu_fold(inst: Any, regs: _Regs) -> int | None:
    """Constant-fold a pure int ALU op when every register source is known.

    Folds by evaluating the generated expression with source texts that
    are themselves literals, so the folded value is identical to what
    the emitted code would compute.
    """
    if inst.op not in _FOLDABLE_OPS:
        return None
    for bank, num in inst.sources:
        key = num if bank == "i" else 32 + num
        if regs.read_const(key) is None:
            return None
    expr, _ = _alu_expr(inst, regs, "")  # const reads: no promotion emitted
    return int(eval(expr, dict(_FOLD_GLOBALS)))  # noqa: S307 - own codegen


def _branch_expr(inst: Any, regs: _Regs, ind: str) -> str:
    """Condition text for a K_BRANCH instruction (mirrors ``_branch``)."""
    op = inst.op
    a = regs.read(inst.rs, ind)
    if op is Op.BLEZ:
        return f"{a} <= 0"
    if op is Op.BGTZ:
        return f"{a} > 0"
    b = regs.read(inst.rt, ind)
    if op is Op.BEQ:
        return f"{a} == {b}"
    if op is Op.BNE:
        return f"{a} != {b}"
    if op is Op.BLT:
        return f"{a} < {b}"
    return f"{a} >= {b}"


def _wrap_s32(value: int) -> int:
    return ((value + _S) & _M) - _S


# --- in-order block emitter --------------------------------------------------
#
# Generated signature: def _b{pc:x}(ir, fr, ready, st, env)
#
# st (list, 22 slots): 0..7 the fast-timing vector [last_fetch, redirect,
#   ex_free, mem_free, prev_mem_start, front0, front1, front2], 8 itick,
#   9 dtick, 10 ihits, 11 imiss, 12 dhits, 13 dmiss, 14 fetched,
#   15 c_regread, 16 c_regwrite, 17 c_dcache, 18 pc, 19 executed,
#   20 wd (honor and not masked and wd_enabled), 21 wd_expiry.
# env (tuple, 14): words, words.get, icache sets, dcache sets, mmio,
#   mmio.read, mmio.write, machine.data_read, machine.data_write,
#   stall_cycles, timing base, honor_watchdog, gshare-train-or-None,
#   indirect-train-or-None.
#
# Return protocol: int -> next block pc (full block retired); "h" -> halt;
# "w" -> watchdog.  String exits (and faults) leave the authoritative
# pc/executed in st[18]/st[19]; every may-raise operation is preceded by a
# full st write so faults are observationally identical to the reference.

_INORDER_ENV = (
    "words, words_get, isets, dsets, mmio, mmio_read, mmio_write, "
    "data_read, data_write, stall, base, honor, tg, ti"
)
_INORDER_ST = (
    "lf, rd, xf, mf, pm, q0, q1, q2, itick, dtick, ihits, imiss, dhits, "
    "dmiss, cfe, crr, crw, cdc, _pc, nex, wd, wdx"
)


def _ctr(name: str, add: int) -> str:
    return f"{name} + {add}" if add else name


_TMAX_RE = re.compile(
    r"^(\s+)t = ([A-Za-z_][A-Za-z0-9_]*(?:\[\d+\])?)( \+ 1)?$"
)
_TMAX_IF_RE = re.compile(r"^(\s+)if t > ([A-Za-z_][A-Za-z0-9_]*):$")


def _tighten_max(lines: list[str]) -> list[str]:
    """Strength-reduce the scratch-``t`` max pattern in emitted code.

    ``t = E; if t > x: x = t`` (with ``E`` a name, a literal subscript,
    or either plus one) becomes a direct compare that skips the scratch
    store/load — and computes ``E + 1`` only on the taken path.  ``t``
    is write-before-read scratch at every emission site, so dropping an
    assignment never leaks into a later read.
    """
    out: list[str] = []
    i = 0
    n = len(lines)
    while i < n:
        m = _TMAX_RE.match(lines[i])
        if m and i + 2 < n:
            mi = _TMAX_IF_RE.match(lines[i + 1])
            if (
                mi
                and mi.group(1) == m.group(1)
                and lines[i + 2] == f"{m.group(1)}    {mi.group(2)} = t"
            ):
                ind, e, x = m.group(1), m.group(2), mi.group(2)
                if m.group(3):  # E + 1 > x  <=>  E >= x (ints)
                    out.append(f"{ind}if {e} >= {x}:")
                    out.append(f"{ind}    {x} = {e} + 1")
                else:
                    out.append(f"{ind}if {e} > {x}:")
                    out.append(f"{ind}    {x} = {e}")
                i += 3
                continue
        out.append(lines[i])
        i += 1
    return out


class _InOrderEmitter:
    """Emit one in-order basic-block function (see layout comment above)."""

    def __init__(self, geom: "_Geometry") -> None:
        self.g = geom
        self.lines: list[str] = []
        self.regs = _Regs(self.lines)
        # Semantic timing-state names -> current text (SSA per instruction).
        self.nm = {k: k for k in
                   ("lf", "rd", "xf", "mf", "pm", "q0", "q1", "q2")}
        self.cfe = 0
        self.crr = 0
        self.crw = 0
        self.nex = 0
        # Statically-guaranteed icache hits, batched: pending tick count and
        # last way-write offset per (set, block).
        self.ip_count = 0
        self.ip_ways: dict[tuple[int, int], int] = {}
        self._last_line: dict[int, int] = {}
        # Trace tier: elide per-inst watchdog checks behind an entry guard
        # (wd must be falsy on entry); ``_wd_reload`` marks the insts that
        # may flip wd (MMIO stores) and need a guarded side exit instead.
        self._wd_elide = False
        self._wd_reload = False

    # -- helpers --

    def emit(self, ind: str, text: str) -> None:
        self.lines.append(ind + text)

    def _pending_way_lines(self, ind: str) -> list[str]:
        out = []
        for (setk, blk), off in self.ip_ways.items():
            tick = _ctr("itick", off)
            out.append(f"{ind}iw{setk}[{blk}] = {tick}")
        return out

    def _materialize_icache(self, ind: str) -> None:
        """Apply batched guaranteed-hit icache accesses (mutating)."""
        if not self.ip_count:
            return
        self.lines.extend(self._pending_way_lines(ind))
        self.emit(ind, f"itick += {self.ip_count}")
        self.emit(ind, f"ihits += {self.ip_count}")
        self.ip_count = 0
        self.ip_ways.clear()

    def _sync(self, ind: str, pc_expr: str, commit: bool | None = None) -> None:
        """Write full architectural+batched state to st (fault parity).

        Never clears codegen-side pending icache state: on raising paths
        nothing follows, and on continuing paths the pending way-writes
        are idempotent re-writes.  Register spills at base indent are
        unconditional, so by default they *do* commit (clear the dirty
        set) and later syncs skip them; spills inside an arm repeat at
        the next sync.  ``commit=False`` is required at the one site
        where a destination register is already marked dirty but its
        runtime assignment only happens *after* the sync (statically
        known MMIO loads): committing there would lose the writeback.
        """
        self.lines.extend(self._pending_way_lines(ind))
        if commit is None:
            commit = ind == "    "
        self.lines.extend(self.regs.spill_lines(ind, commit=commit))
        n = self.nm
        self.emit(ind, "st[:] = (" + ", ".join((
            n["lf"], n["rd"], n["xf"], n["mf"], n["pm"],
            n["q0"], n["q1"], n["q2"],
            _ctr("itick", self.ip_count), "dtick",
            _ctr("ihits", self.ip_count), "imiss", "dhits", "dmiss",
            _ctr("cfe", self.cfe), _ctr("crr", self.crr),
            _ctr("crw", self.crw), "cdc",
            pc_expr, _ctr("nex", self.nex), "wd", "wdx",
        )) + ")")

    def _exit(self, ind: str, pc_expr: str, ret: str) -> None:
        self._sync(ind, pc_expr)
        self.emit(ind, f"return {ret}")

    def _icache(self, i: int, pc: int, f: str) -> None:
        """Inline I-cache access for the fetch of ``pc`` (ind level 1)."""
        g = self.g
        blk = pc >> g.ishift
        setk = blk % g.insets
        if self._last_line.get(setk) == blk:
            # Guaranteed hit: the set's previous access was this line and
            # nothing touched the set since -> batch tick/hit/way-write.
            self.ip_ways[(setk, blk)] = self.ip_count
            self.ip_count += 1
        else:
            self._materialize_icache("    ")
            w = f"iw{setk}"
            self.emit("    ", f"if {blk} in {w}:")
            self.emit("        ", f"{w}[{blk}] = itick")
            self.emit("        ", "itick += 1")
            self.emit("        ", "ihits += 1")
            self.emit("    ", "else:")
            self.emit("        ", f"{w}[{blk}] = itick")
            self.emit("        ", "itick += 1")
            self.emit("        ", f"if len({w}) > {g.iassoc}:")
            self.emit("            ",
                      f"del {w}[min({w}, key={w}.__getitem__)]")
            self.emit("        ", "imiss += 1")
            self.emit("        ", f"{f} += stall")
            self._last_line[setk] = blk
        self.cfe += 1

    def _dcache(self, ind: str, i: int, a: str, d: str | None) -> None:
        """Inline D-cache access for address text ``a``.

        ``d`` names the dcache_extra local to set (None: caller only
        needs the stats/LRU side effects — OOO store commit path).
        """
        g = self.g
        self.emit(ind, f"b{i} = {a} >> {g.dshift}")
        self.emit(ind, f"w = dsets[b{i} % {g.dnsets}]")
        self.emit(ind, f"if b{i} in w:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", "dhits += 1")
        if d is not None:
            self.emit(ind + "    ", f"{d} = 0")
        self.emit(ind, "else:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", f"if len(w) > {g.dassoc}:")
        self.emit(ind + "        ", "del w[min(w, key=w.__getitem__)]")
        self.emit(ind + "    ", "dmiss += 1")
        if d is not None:
            self.emit(ind + "    ", f"{d} = stall")

    # -- main entry --

    def emit_block(self, pc: int, insts: list[tuple[int, Any]]) -> str:
        """Generate the block function source for ``insts`` at ``pc``."""
        fname = f"_b{pc:x}"
        head = [
            f"def {fname}(ir, fr, ready, st, env):",
            f"    ({_INORDER_ENV}) = env",
            f"    ({_INORDER_ST}) = st",
        ]
        g = self.g
        sets_used = sorted({
            (ipc >> g.ishift) % g.insets for ipc, _ in insts
        })
        for setk in sets_used:
            head.append(f"    iw{setk} = isets[{setk}]")
        for idx, (ipc, fi) in enumerate(insts):
            self._inst(idx, ipc, fi, is_last=idx == len(insts) - 1)
        return "\n".join(head + _tighten_max(self.lines)) + "\n"

    def _inst(self, i: int, pc: int, fi: Any, is_last: bool) -> None:
        (kind, _ex, src_keys, dkey, wbank, dnum, nsrc, lat,
         npc, starget, ptaken, inst) = fi
        n = self.nm
        regs = self.regs
        g = self.g
        ind = "    "
        self._wd_reload = False

        # -- fetch timing + I-cache (reference lines: fetch clamps then
        # `fetch += icache_extra`, emitted as `f += stall` on the miss arm).
        f = f"f{i}"
        self.emit(ind, f"{f} = {n['lf']} + 1")
        self.emit(ind, f"if {n['rd']} > {f}:")
        self.emit(ind + "    ", f"{f} = {n['rd']}")
        self.emit(ind, f"if {n['q0']} > {f}:")
        self.emit(ind + "    ", f"{f} = {n['q0']}")
        self._icache(i, pc, f)

        # -- execute section (specialized expression + dcache access) --
        a = f"a{i}"
        d = f"d{i}"
        const_addr: int | None = None
        mmio_static: bool | None = None
        vt = ""
        if kind == K_ALU:
            folded = _alu_fold(inst, regs)
            if folded is not None:
                if wbank != 0:
                    regs.write_const(dkey, folded)
            else:
                expr, may_raise = _alu_expr(inst, regs, ind)
                if may_raise:
                    self._sync(ind, str(pc))
                if wbank != 0:
                    self.emit(ind, f"{regs.write_name(dkey)} = {expr}")
                elif may_raise:
                    self.emit(ind, f"v{i} = {expr}")
        elif kind == K_LOAD or kind == K_STORE:
            base_c = regs.read_const(inst.rs)
            if kind == K_LOAD:
                if base_c is not None:
                    const_addr = (base_c + inst.imm) & _M
                    a = str(const_addr)
                else:
                    s_txt = regs.read(inst.rs, ind)
                    self.emit(ind, f"{a} = ({s_txt} + {inst.imm}) & _M")
            else:
                s_txt = "" if base_c is not None else regs.read(inst.rs, ind)
                vt = (regs.read(32 + inst.rt, ind) if inst.op is Op.FSW
                      else regs.read(inst.rt, ind))
                if base_c is not None:
                    const_addr = (base_c + inst.imm) & _M
                    a = str(const_addr)
                else:
                    self.emit(ind, f"{a} = ({s_txt} + {inst.imm}) & _M")
            mmio_static = (const_addr >= _MMIO) if const_addr is not None \
                else None
            if mmio_static is True:
                self.emit(ind, f"{d} = 0")
            elif mmio_static is False:
                self.emit(ind, "cdc += 1")
                self._dcache(ind, i, a, d)
            elif kind == K_LOAD:
                self.emit(ind, f"o{i} = {a} >= {_MMIO}")
                self.emit(ind, f"if o{i}:")
                self.emit(ind + "    ", f"{d} = 0")
                self.emit(ind, "else:")
                self.emit(ind + "    ", "cdc += 1")
                self._dcache(ind + "    ", i, a, d)
            else:
                self.emit(ind, f"if {a} < {_MMIO}:")
                self.emit(ind + "    ", "cdc += 1")
                self._dcache(ind + "    ", i, a, d)
                self.emit(ind, "else:")
                self.emit(ind + "    ", f"{d} = 0")
        elif kind == K_BRANCH:
            k = f"k{i}"
            self.emit(ind, f"{k} = {_branch_expr(inst, regs, ind)}")
            self.emit(ind, "if tg is not None:")
            self.emit(ind + "    ", f"tg({pc}, {k})")
        elif kind == K_INDIRECT:
            s_txt = regs.read(inst.rs, ind)
            self.emit(ind, f"g{i} = {s_txt} & _M")
            self.emit(ind, "if ti is not None:")
            self.emit(ind + "    ", f"ti({pc}, g{i})")
        # K_JUMP / K_HALT: nothing to execute.

        # -- timing recurrence (inlined inorder_engine.advance) --
        x = f"x{i}"
        self.emit(ind, f"{x} = {f} + {_FRONT_DEPTH}")
        self.emit(ind, f"t = {n['xf']} + 1")
        self.emit(ind, f"if t > {x}:")
        self.emit(ind + "    ", f"{x} = t")
        self.emit(ind, f"if {n['pm']} > {x}:")
        self.emit(ind + "    ", f"{x} = {n['pm']}")
        for sk in dict.fromkeys(src_keys):
            self.emit(ind, f"t = ready[{sk}]")
            self.emit(ind, f"if t > {x}:")
            self.emit(ind + "    ", f"{x} = t")
        if lat == 1:
            xe = x
        else:
            xe = f"e{i}"
            self.emit(ind, f"{xe} = {x} + {lat - 1}")
        m = f"m{i}"
        self.emit(ind, f"{m} = {xe} + 1")
        self.emit(ind, f"t = {n['mf']} + 1")
        self.emit(ind, f"if t > {m}:")
        self.emit(ind + "    ", f"{m} = t")
        if kind == K_LOAD or kind == K_STORE:
            if mmio_static is True:
                u = m  # dcache_extra statically 0
            else:
                u = f"u{i}"
                self.emit(ind, f"{u} = {m} + {d}")
        else:
            u = m
        if dkey >= 0:
            src = f"{u} + 1" if kind == K_LOAD else f"{xe} + 1"
            self.emit(ind, f"ready[{dkey}] = {src}")
        rd_old = n["rd"]
        if kind == K_BRANCH:
            r = f"r{i}"
            pen = f"{xe} + {_REDIRECT_OFFSET}"
            if ptaken:
                self.emit(ind, f"{r} = {rd_old} if k{i} else ({pen})")
            else:
                self.emit(ind, f"{r} = ({pen}) if k{i} else {rd_old}")
            n["rd"] = r
        elif kind == K_INDIRECT:
            r = f"r{i}"
            self.emit(ind, f"{r} = {xe} + {_REDIRECT_OFFSET}")
            n["rd"] = r
        n["q0"], n["q1"], n["q2"] = n["q1"], n["q2"], x
        n["lf"], n["xf"], n["mf"], n["pm"] = f, xe, u, m

        # -- architectural side effects --
        pc_next = str(npc)
        if kind == K_LOAD:
            if wbank != 0:
                regs.prepare_write(dkey, ind)
                dest = regs.write_name(dkey)
            else:
                dest = f"v{i}"
            mm = f"{dest} = mmio_read({a}, base + {m})"
            mem_guard = f"if {a} & 3 or {g.tbase} <= {a} < {g.text_end}:"
            mem_read = f"data_read({a}, base + {u} + 1)"
            mem_val = f"{dest} = words_get({a}, 0)"
            if mmio_static is True:
                self._sync(ind, str(pc), commit=False)
                self.emit(ind, mm)
            elif mmio_static is False:
                self.emit(ind, mem_guard)
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mem_read)
                self.emit(ind, mem_val)
            else:
                self.emit(ind, f"if o{i}:")
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mm)
                self.emit(ind, "else:")
                self.emit(ind + "    ", mem_guard)
                self._sync(ind + "        ", str(pc))
                self.emit(ind + "        ", mem_read)
                self.emit(ind + "    ", mem_val)
        elif kind == K_STORE:
            wr = self._store_words_lines(ind, a, vt)
            mm = [
                f"mmio_write({a}, {vt}, base + {m})",
                "wd = honor and not mmio.exceptions_masked"
                " and mmio._wd_enabled",
                "wdx = mmio._wd_expiry",
            ]
            mem_guard = f"if {a} & 3 or {g.tbase} <= {a} < {g.text_end}:"
            mem_write = f"data_write({a}, {vt}, base + {u} + 1)"
            if mmio_static is True:
                self._wd_reload = True
                self._sync(ind, str(pc))
                for line in mm:
                    self.emit(ind, line)
            elif mmio_static is False:
                self.emit(ind, mem_guard)
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mem_write)
                for line in wr:
                    self.emit(ind, line)
            else:
                self._wd_reload = True
                self.emit(ind, f"if {a} >= {_MMIO}:")
                self._sync(ind + "    ", str(pc))
                for line in mm:
                    self.emit(ind + "    ", line)
                self.emit(ind, "else:")
                self.emit(ind + "    ", mem_guard)
                self._sync(ind + "        ", str(pc))
                self.emit(ind + "        ", mem_write)
                for line in wr:
                    self.emit(ind + "    ", line)
        elif kind == K_BRANCH:
            pc_next = f"n{i}"
            self.emit(ind, f"{pc_next} = {starget} if k{i} else {npc}")
        elif kind == K_JUMP:
            if wbank == 1:
                regs.write_const(dkey, npc)
            pc_next = str(starget)
        elif kind == K_INDIRECT:
            if wbank == 1:
                regs.write_const(dkey, npc)
            pc_next = f"g{i}"
        # K_ALU: write already folded into the execute section.  K_HALT:
        # pc advances to npc (pc_next default).

        # -- event counters (statically known; become exit literals) --
        self.crr += nsrc
        if dkey >= 0:
            self.crw += 1
        self.nex += 1

        if kind == K_HALT:
            self._exit(ind, pc_next, '"h"')
            return

        if not self._wd_elide:
            self.emit(ind, f"if wd and base + {u} + 1 >= wdx:")
            self._exit(ind + "    ", pc_next, '"w"')
        elif self._wd_reload:
            # Trace tier: wd was falsy at trace entry, and only an MMIO
            # store can flip it.  Reproduce the block tier's expiry check
            # here, then side-exit — the block functions resume with
            # their per-instruction checks.
            self.emit(ind, "if wd:")
            self.emit(ind + "    ", f"if base + {u} + 1 >= wdx:")
            self._exit(ind + "        ", pc_next, '"w"')
            self._exit(ind + "    ", pc_next, pc_next)

        if is_last:
            self._exit(ind, pc_next, pc_next)

    def _store_words_lines(self, ind: str, a: str, vt: str) -> list[str]:
        """The memory-image store with the reference's int wrap check."""
        try:
            const = int(vt)
        except ValueError:
            return [
                f"if {vt}.__class__ is int:",
                f"    words[{a}] = (({vt} + {_S}) & {_M}) - {_S}",
                "else:",
                f"    words[{a}] = {vt}",
            ]
        return [f"words[{a}] = {_wrap_s32(const)}"]


# --- OOO block emitter --------------------------------------------------------
#
# Generated signature: def _o{pc:x}(ir, fr, ready, st, env)
#
# st (list, 23 slots): 0 bus_free, 1 fetch_cycle, 2 group_done,
#   3 group_count, 4 group_block, 5 redirect, 6 last_commit (the
#   *committed* value: at a mid-instruction fault it lags the commit-stage
#   clamp exactly like ``committed_now`` in the reference), 7 itick,
#   8 dtick, 9 ihits, 10 imiss, 11 dhits, 12 dmiss, 13 c_group,
#   14 c_bpred, 15 c_regread, 16 c_regwrite, 17 c_dcache, 18 n_mem,
#   19 pc, 20 executed, 21 wd, 22 wd_expiry.
# env (tuple, 32): words, words.get, icache sets, dcache sets, mmio,
#   mmio.read, mmio.write, machine.data_read, machine.data_write,
#   stall penalty, timing base, honor_watchdog, gshare.predict,
#   gshare.update, indirect.predict, indirect.update, then the per-segment
#   scheduling structures: dis_used/dis_get, iss_used/iss_get,
#   com_used/com_get, port_used/port_get, rob_commits/rob_append,
#   iq_issues/iq_append, lsq_commits/lsq_append,
#   inflight_stores/inflight_stores.get.

_OOO_ENV = (
    "words, words_get, isets, dsets, mmio, mmio_read, mmio_write, "
    "data_read, data_write, pen, base, honor, gpredict, gupdate, "
    "ipredict, iupdate, dis_used, dis_get, iss_used, iss_get, com_used, "
    "com_get, port_used, port_get, rob_commits, rob_append, iq_issues, "
    "iq_append, lsq_commits, lsq_append, inflight_stores, get_inflight"
)
_OOO_ST = (
    "bf, fc, gd, gc, gb, rd, lc, itick, dtick, ihits, imiss, dhits, "
    "dmiss, cg, cbp, crr, crw, cdc, nmem, _pc, nex, wd, wdx"
)

# Event-mode layouts (REPRO_OOO_SCHED=event).  The st prefix [0..22] is
# identical to the scan layout — the dispatcher's finally-flush and the
# trace tier's watchdog entry guard index into it — with six appended
# slots: 23 ri (ROB ring cursor), 24 qi (IQ ring cursor), 25 li (LSQ
# ring cursor), 26 ccn (commits at the lc frontier cycle), 27 gh
# (gshare global history), 28 ih (indirect-predictor history).  env
# swaps the bound predictor methods and the commit width map + three
# occupancy deques for the raw predictor tables and preallocated rings
# (the generated code inlines predictor reads/updates and ring
# occupancy clamps; see ``_OOOEmitter``).

_OOO_ENV_EVENT = (
    "words, words_get, isets, dsets, mmio, mmio_read, mmio_write, "
    "data_read, data_write, pen, base, honor, gt, it, it_get, "
    "dis_used, dis_get, iss_used, iss_get, port_used, port_get, "
    "robq, iqq, lsqq, inflight_stores, get_inflight"
)
_OOO_ST_EVENT = _OOO_ST + ", ri, qi, li, ccn, gh, ih"


def _fwd_consumers(insts: list[tuple[int, Any]]) -> set[int]:
    """Indices of instructions whose result has an in-block consumer.

    The event emitter binds a producer's wakeup value to a local only
    when a later instruction in the same emission unit reads that
    register before it is rewritten (dependency metadata precomputed at
    decode time); producers without consumers write ``ready`` directly.
    """
    last_writer: dict[int, int] = {}
    useful: set[int] = set()
    for idx, (_ipc, fi) in enumerate(insts):
        src_keys, dkey = fi[2], fi[3]
        for sk in src_keys:
            j = last_writer.get(sk)
            if j is not None:
                useful.add(j)
        if dkey >= 0:
            last_writer[dkey] = idx
    return useful


class _OOOEmitter:
    """Emit one complex-mode basic-block function (layout comment above)."""

    def __init__(
        self, geom: "_Geometry", params: Any, event: bool = False,
    ) -> None:
        self.g = geom
        self.p = params
        #: Event-driven scheduler codegen (REPRO_OOO_SCHED=event): ring
        #: occupancy clamps, commit-frontier retirement, inlined
        #: predictors, in-block producer forwarding.  Bit-identical to
        #: the scan form by construction (see docs/performance.md).
        self.event = event
        self.lines: list[str] = []
        self.regs = _Regs(self.lines)
        # Commit-clamp name (the reference's ``last_commit``, updated at
        # the commit stage) vs sync name (``committed_now``'s cycle part,
        # which only advances *after* an instruction's side effects).
        # Event mode keeps ``lc`` as one mutable frontier local instead
        # of rotating SSA names.
        self.lc = "lc"
        self.lc_sync = "lc"
        # Event mode: flat register key -> local holding the ready value
        # its in-block producer just computed (consumers read the local
        # instead of ``ready[key]``; the values are equal by construction).
        self._fwd: dict[int, str] = {}
        # Inst indices whose forwarding local has an in-block consumer
        # (None = unknown, always bind; plain blocks precompute it).
        self._fwd_useful: set[int] | None = None
        self.cbp = 0
        self.crr = 0
        self.crw = 0
        self.nex = 0
        self.nmem = 0
        self._prev_blk: int | None = None
        # Set by the trace emitter after a stitched-in branch: the
        # mid-block specializations below assume no preceding control
        # instruction (redirect can't have moved), which stops holding
        # across a stitch point, so the next group formation must use
        # the fully dynamic block-entry form.
        self._dyn_group = False
        # Trace tier: see the in-order emitter.
        self._wd_elide = False
        self._wd_reload = False

    def emit(self, ind: str, text: str) -> None:
        self.lines.append(ind + text)

    def _sync(self, ind: str, pc_expr: str, commit: bool | None = None) -> None:
        """Write full architectural state to st before a may-raise op.

        Spill-commit semantics mirror the in-order emitter: base-indent
        syncs clear the dirty set, except when a dirty destination's
        runtime assignment follows the sync (``commit=False``).
        """
        if commit is None:
            commit = ind == "    "
        self.lines.extend(self.regs.spill_lines(ind, commit=commit))
        slots = (
            "bf", "fc", "gd", "gc", "gb", "rd", self.lc_sync,
            "itick", "dtick", "ihits", "imiss", "dhits", "dmiss", "cg",
            _ctr("cbp", self.cbp), _ctr("crr", self.crr),
            _ctr("crw", self.crw), "cdc", _ctr("nmem", self.nmem),
            pc_expr, _ctr("nex", self.nex), "wd", "wdx",
        )
        if self.event:
            slots += ("ri", "qi", "li", "ccn", "gh", "ih")
        self.emit(ind, "st[:] = (" + ", ".join(slots) + ")")

    def _exit(self, ind: str, pc_expr: str, ret: str) -> None:
        self._sync(ind, pc_expr)
        self.emit(ind, f"return {ret}")

    def _dcache_hit(self, ind: str, i: int, a: str) -> None:
        """Inline D-cache access setting the hit flag ``h{i}``."""
        g = self.g
        self.emit(ind, f"b{i} = {a} >> {g.dshift}")
        self.emit(ind, f"w = dsets[b{i} % {g.dnsets}]")
        self.emit(ind, f"if b{i} in w:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", "dhits += 1")
        self.emit(ind + "    ", f"h{i} = True")
        self.emit(ind, "else:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", f"if len(w) > {g.dassoc}:")
        self.emit(ind + "        ", "del w[min(w, key=w.__getitem__)]")
        self.emit(ind + "    ", "dmiss += 1")
        self.emit(ind + "    ", f"h{i} = False")

    def _dcache_store_commit(self, ind: str, i: int, a: str, y: str) -> None:
        """Store-commit D-cache access; a miss occupies the bus (fill)."""
        g = self.g
        self.emit(ind, f"b{i} = {a} >> {g.dshift}")
        self.emit(ind, f"w = dsets[b{i} % {g.dnsets}]")
        self.emit(ind, f"if b{i} in w:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", "dhits += 1")
        self.emit(ind, "else:")
        self.emit(ind + "    ", f"w[b{i}] = dtick")
        self.emit(ind + "    ", "dtick += 1")
        self.emit(ind + "    ", f"if len(w) > {g.dassoc}:")
        self.emit(ind + "        ", "del w[min(w, key=w.__getitem__)]")
        self.emit(ind + "    ", "dmiss += 1")
        self.emit(ind + "    ", f"t = {y}")
        self.emit(ind + "    ", "if bf > t:")
        self.emit(ind + "        ", "t = bf")
        self.emit(ind + "    ", "bf = t + pen")

    def emit_block(self, pc: int, insts: list[tuple[int, Any]]) -> str:
        fname = f"_o{pc:x}"
        head = [
            f"def {fname}(ir, fr, ready, st, env):",
            f"    ({_OOO_ENV_EVENT if self.event else _OOO_ENV}) = env",
            f"    ({_OOO_ST_EVENT if self.event else _OOO_ST}) = st",
        ]
        if self.event:
            self._fwd_useful = _fwd_consumers(insts)
        for idx, (ipc, fi) in enumerate(insts):
            self._inst(idx, ipc, fi, is_last=idx == len(insts) - 1)
        return "\n".join(head + _tighten_max(self.lines)) + "\n"

    def _fetch_group(self, i: int, pc: int) -> None:
        """Fetch-group formation (reference 'fetch group' section)."""
        g = self.g
        fw = self.p.fetch_width
        blk = pc >> g.ishift
        setk = blk % g.insets
        ind = "    "
        if i == 0 or self._dyn_group:
            # Block entry (or first fetch after a stitched branch):
            # fully dynamic condition.
            self._dyn_group = False
            self.emit(ind, f"if gc >= {fw} or gb != {blk} or fc < rd:")
            self._group_body(ind + "    ", blk, setk, clamp=True)
        elif self._prev_blk != blk:
            # New cache line mid-block: `blk != group_block` holds (the
            # last group formed on the previous line) and mid-block
            # `fetch_cycle >= redirect` always -> form unconditionally.
            self._group_body(ind, blk, setk, clamp=False)
        else:
            # Same line as the previous instruction: only width overflow
            # can break the group, and the line is a guaranteed hit (the
            # set's most recent access was this very line).
            self.emit(ind, f"if gc >= {fw}:")
            b = ind + "    "
            self.emit(b, "fc += 1")
            self.emit(b, "gc = 0")
            self.emit(b, "cg += 1")
            self.emit(b, f"w = isets[{setk}]")
            self.emit(b, f"w[{blk}] = itick")
            self.emit(b, "itick += 1")
            self.emit(b, "ihits += 1")
            self.emit(b, "gd = fc")
        self.emit(ind, "gc += 1")
        self._prev_blk = blk

    def _group_body(self, b: str, blk: int, setk: int, clamp: bool) -> None:
        self.emit(b, "fc += 1")
        if clamp:
            self.emit(b, "if rd > fc:")
            self.emit(b + "    ", "fc = rd")
        self.emit(b, "gc = 0")
        self.emit(b, f"gb = {blk}")
        self.emit(b, "cg += 1")
        self.emit(b, f"w = isets[{setk}]")
        self.emit(b, f"if {blk} in w:")
        self.emit(b + "    ", f"w[{blk}] = itick")
        self.emit(b + "    ", "itick += 1")
        self.emit(b + "    ", "ihits += 1")
        self.emit(b + "    ", "gd = fc")
        self.emit(b, "else:")
        self.emit(b + "    ", f"w[{blk}] = itick")
        self.emit(b + "    ", "itick += 1")
        self.emit(b + "    ", f"if len(w) > {self.g.iassoc}:")
        self.emit(b + "        ", "del w[min(w, key=w.__getitem__)]")
        self.emit(b + "    ", "imiss += 1")
        self.emit(b + "    ", "t = fc")
        self.emit(b + "    ", "if bf > t:")
        self.emit(b + "        ", "t = bf")
        self.emit(b + "    ", "bf = t + pen")
        self.emit(b + "    ", "gd = bf")
        self.emit(b + "    ", "fc = gd")

    def _inst(self, i: int, pc: int, fi: Any, is_last: bool) -> None:
        (kind, _ex, src_keys, dkey, wbank, dnum, nsrc, lat,
         npc, starget, ptaken, inst) = fi
        regs = self.regs
        g = self.g
        p = self.p
        ind = "    "
        self._wd_reload = False

        self._fetch_group(i, pc)

        # -- architectural execute + branch prediction --
        a = f"a{i}"
        const_addr: int | None = None
        mmio_static: bool | None = None
        vt = ""
        if kind == K_ALU:
            folded = _alu_fold(inst, regs)
            if folded is not None:
                if wbank != 0:
                    regs.write_const(dkey, folded)
            else:
                expr, may_raise = _alu_expr(inst, regs, ind)
                if may_raise:
                    self._sync(ind, str(pc))
                if wbank != 0:
                    self.emit(ind, f"{regs.write_name(dkey)} = {expr}")
                elif may_raise:
                    self.emit(ind, f"v{i} = {expr}")
        elif kind == K_LOAD or kind == K_STORE:
            base_c = regs.read_const(inst.rs)
            s_txt = "" if base_c is not None else regs.read(inst.rs, ind)
            if kind == K_STORE:
                vt = (regs.read(32 + inst.rt, ind) if inst.op is Op.FSW
                      else regs.read(inst.rt, ind))
            if base_c is not None:
                const_addr = (base_c + inst.imm) & _M
                a = str(const_addr)
                mmio_static = const_addr >= _MMIO
            else:
                self.emit(ind, f"{a} = ({s_txt} + {inst.imm}) & _M")
        elif kind == K_BRANCH:
            self.emit(ind, f"k{i} = {_branch_expr(inst, regs, ind)}")
            if self.event:
                # Inlined gshare (predictor.py semantics, 2^16 geometry
                # folded at codegen): predict on the pre-update history,
                # saturate the 2-bit counter, shift the outcome in.
                self.emit(ind, f"gi = ({pc >> 2} ^ gh) & 65535")
                self.emit(ind, "gv = gt[gi]")
                self.emit(ind, f"p{i} = gv >= 2")
                self.emit(ind, f"if k{i}:")
                self.emit(ind + "    ", "if gv < 3:")
                self.emit(ind + "        ", "gt[gi] = gv + 1")
                self.emit(ind + "    ", "gh = ((gh << 1) | 1) & 65535")
                self.emit(ind, "else:")
                self.emit(ind + "    ", "if gv:")
                self.emit(ind + "        ", "gt[gi] = gv - 1")
                self.emit(ind + "    ", "gh = (gh << 1) & 65535")
            else:
                self.emit(ind, f"p{i} = gpredict({pc})")
                self.emit(ind, f"gupdate({pc}, k{i})")
            self.cbp += 1
        elif kind == K_INDIRECT:
            s_txt = regs.read(inst.rs, ind)
            self.emit(ind, f"g{i} = {s_txt} & _M")
            if self.event:
                # Inlined indirect-target table (update shifts a taken
                # bit into the history, per predictor.py).
                self.emit(ind, f"ii = ({pc >> 2} ^ ih) & 65535")
                self.emit(ind, f"p{i} = it_get(ii)")
                self.emit(ind, f"it[ii] = g{i}")
                self.emit(ind, "ih = ((ih << 1) | 1) & 65535")
            else:
                self.emit(ind, f"p{i} = ipredict({pc})")
                self.emit(ind, f"iupdate({pc}, g{i})")
            self.cbp += 1
        # K_JUMP / K_HALT: nothing to execute.

        # -- dispatch (rename, allocate ROB/IQ/LSQ) --
        is_mem = kind == K_LOAD or kind == K_STORE
        d = f"d{i}"
        self.emit(ind, f"{d} = gd + 1")
        if self.event:
            # Ring occupancy clamps: the cursor slot holds the oldest
            # live entry exactly when the structure is full, else the -1
            # sentinel (never >= d, which is >= 1), reproducing the
            # deque len==N guard without a length check.
            rings = [("robq", "ri"), ("iqq", "qi")]
            if is_mem:
                self.nmem += 1
                rings.append(("lsqq", "li"))
            for ring, cur in rings:
                self.emit(ind, f"t = {ring}[{cur}]")
                self.emit(ind, f"if t >= {d}:")
                self.emit(ind + "    ", f"{d} = t + 1")
        else:
            for q, n_entries in (
                ("rob_commits", p.rob_entries),
                ("iq_issues", p.iq_entries),
            ):
                self.emit(ind, f"if len({q}) == {n_entries}:")
                self.emit(ind + "    ", f"t = {q}[0] + 1")
                self.emit(ind + "    ", f"if t > {d}:")
                self.emit(ind + "        ", f"{d} = t")
            if is_mem:
                self.nmem += 1
                self.emit(ind, f"if len(lsq_commits) == {p.lsq_entries}:")
                self.emit(ind + "    ", "t = lsq_commits[0] + 1")
                self.emit(ind + "    ", f"if t > {d}:")
                self.emit(ind + "        ", f"{d} = t")
        self.emit(ind, f"while (vd := dis_get({d}, 0)) >= {p.dispatch_width}:")
        self.emit(ind + "    ", f"{d} += 1")
        self.emit(ind, f"dis_used[{d}] = vd + 1")

        # -- issue (wakeup/select) --
        s = f"s{i}"
        self.emit(ind, f"{s} = {d} + 1")
        for sk in dict.fromkeys(src_keys):
            fwd = self._fwd.get(sk) if self.event else None
            self.emit(ind, f"t = {fwd if fwd is not None else f'ready[{sk}]'}")
            self.emit(ind, f"if t > {s}:")
            self.emit(ind + "    ", f"{s} = t")
        if is_mem:
            self.emit(ind, "while True:")
            self.emit(ind + "    ",
                      f"while (vi := iss_get({s}, 0)) >= {p.issue_width}:")
            self.emit(ind + "        ", f"{s} += 1")
            self.emit(ind + "    ", f"t = {s}")
            self.emit(ind + "    ",
                      f"while (vp := port_get(t, 0)) >= {p.cache_ports}:")
            self.emit(ind + "        ", "t += 1")
            self.emit(ind + "    ", f"if t == {s}:")
            self.emit(ind + "        ", "break")
            self.emit(ind + "    ", f"{s} = t")
            self.emit(ind, f"port_used[{s}] = vp + 1")
        else:
            self.emit(ind, f"while (vi := iss_get({s}, 0)) >= {p.issue_width}:")
            self.emit(ind + "    ", f"{s} += 1")
        self.emit(ind, f"iss_used[{s}] = vi + 1")
        self.crr += nsrc

        x = f"x{i}"
        if kind == K_LOAD or not self.event:
            self.emit(ind, f"{x} = {s} + {p.issue_to_ex}")

        # -- execute / memory --
        c = f"c{i}"
        if kind == K_LOAD:
            if mmio_static is True:
                self.emit(ind, f"{c} = {x} + 1")
            elif mmio_static is False:
                self._load_mem_timing(ind, i, a, x, c)
            else:
                self.emit(ind, f"o{i} = {a} >= {_MMIO}")
                self.emit(ind, f"if o{i}:")
                self.emit(ind + "    ", f"{c} = {x} + 1")
                self.emit(ind, "else:")
                self._load_mem_timing(ind + "    ", i, a, x, c)
        elif kind == K_STORE:
            # Event mode folds the unused ex_start local into the sum.
            if self.event:
                self.emit(ind, f"{c} = {s} + {p.issue_to_ex + 1}")
            else:
                self.emit(ind, f"{c} = {x} + 1")
        elif self.event:
            self.emit(ind, f"{c} = {s} + {p.issue_to_ex + lat}")
        else:
            self.emit(ind, f"{c} = {x} + {lat}")

        # -- redirect / group break --
        fw = p.fetch_width
        if kind == K_BRANCH:
            self.emit(ind, f"if p{i} != k{i}:")
            self.emit(ind + "    ", f"rd = {c} + 1")
            self.emit(ind + "    ", "fc = rd - 1")
            self.emit(ind + "    ", f"gc = {fw}")
            self.emit(ind, f"elif p{i}:")
            self.emit(ind + "    ", f"gc = {fw}")
        elif kind == K_INDIRECT:
            self.emit(ind, f"if p{i} != g{i}:")
            self.emit(ind + "    ", f"rd = {c} + 1")
            self.emit(ind + "    ", "fc = rd - 1")
            self.emit(ind, f"gc = {fw}")
        elif kind == K_JUMP:
            self.emit(ind, f"gc = {fw}")

        # -- commit (in order, 4-wide) --
        y = f"y{i}"
        if self.event:
            # Batched retirement via the commit frontier (lc, ccn): every
            # candidate max(c+1, lc) is >= lc and the width map has no
            # entries past lc, so one pair replaces the dict scan.  The
            # frontier equals this commit afterwards (lc == y), but the
            # sync slot must keep lagging through the side effects
            # (committed_now semantics), hence the lcp snapshot.
            if is_mem:
                self.emit(ind, f"lcp{i} = lc")
            self.emit(ind, f"{y} = {c} + 1")
            self.emit(ind, f"if {y} <= lc:")
            self.emit(ind + "    ", f"if ccn < {p.commit_width}:")
            self.emit(ind + "        ", "ccn += 1")
            self.emit(ind + "        ", f"{y} = lc")
            self.emit(ind + "    ", "else:")
            self.emit(ind + "        ", "lc += 1")
            self.emit(ind + "        ", "ccn = 1")
            self.emit(ind + "        ", f"{y} = lc")
            self.emit(ind, "else:")
            self.emit(ind + "    ", f"lc = {y}")
            self.emit(ind + "    ", "ccn = 1")
            self.emit(ind, f"robq[ri] = {y}")
            self.emit(ind, "ri += 1")
            self.emit(ind, f"if ri == {p.rob_entries}:")
            self.emit(ind + "    ", "ri = 0")
            if is_mem:
                self.emit(ind, f"lsqq[li] = {y}")
                self.emit(ind, "li += 1")
                self.emit(ind, f"if li == {p.lsq_entries}:")
                self.emit(ind + "    ", "li = 0")
            self.emit(ind, f"iqq[qi] = {s}")
            self.emit(ind, "qi += 1")
            self.emit(ind, f"if qi == {p.iq_entries}:")
            self.emit(ind + "    ", "qi = 0")
            self.lc_sync = f"lcp{i}" if is_mem else "lc"
        else:
            self.emit(ind, f"{y} = {c} + 1")
            self.emit(ind, f"if {self.lc} > {y}:")
            self.emit(ind + "    ", f"{y} = {self.lc}")
            self.emit(
                ind, f"while (vc := com_get({y}, 0)) >= {p.commit_width}:"
            )
            self.emit(ind + "    ", f"{y} += 1")
            self.emit(ind, f"com_used[{y}] = vc + 1")
            self.emit(ind, f"rob_append({y})")
            if is_mem:
                self.emit(ind, f"lsq_append({y})")
            self.emit(ind, f"iq_append({s})")
            # y >= old last_commit by construction, so last_commit
            # becomes y.
            self.lc = y

        # -- architectural side effects --
        pc_next = str(npc)
        if kind == K_LOAD:
            if wbank != 0:
                regs.prepare_write(dkey, ind)
                dest = regs.write_name(dkey)
            else:
                dest = f"v{i}"
            mm = f"{dest} = mmio_read({a}, base + {x} + 1)"
            mem_guard = f"if {a} & 3 or {g.tbase} <= {a} < {g.text_end}:"
            mem_read = f"data_read({a}, base + {y})"
            mem_val = f"{dest} = words_get({a}, 0)"
            if mmio_static is True:
                self._sync(ind, str(pc), commit=False)
                self.emit(ind, mm)
            elif mmio_static is False:
                self.emit(ind, mem_guard)
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mem_read)
                self.emit(ind, mem_val)
            else:
                self.emit(ind, f"if o{i}:")
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mm)
                self.emit(ind, "else:")
                self.emit(ind + "    ", mem_guard)
                self._sync(ind + "        ", str(pc))
                self.emit(ind + "        ", mem_read)
                self.emit(ind + "    ", mem_val)
        elif kind == K_STORE:
            mm = [
                f"mmio_write({a}, {vt}, base + {y})",
                "wd = honor and not mmio.exceptions_masked"
                " and mmio._wd_enabled",
                "wdx = mmio._wd_expiry",
            ]
            mem_guard = f"if {a} & 3 or {g.tbase} <= {a} < {g.text_end}:"
            mem_write = f"data_write({a}, {vt}, base + {y})"
            if mmio_static is True:
                self._wd_reload = True
                self._sync(ind, str(pc))
                for line in mm:
                    self.emit(ind, line)
            elif mmio_static is False:
                self.emit(ind, mem_guard)
                self._sync(ind + "    ", str(pc))
                self.emit(ind + "    ", mem_write)
                self._store_commit(ind, i, a, vt, c, y)
            else:
                self._wd_reload = True
                self.emit(ind, f"if {a} >= {_MMIO}:")
                self._sync(ind + "    ", str(pc))
                for line in mm:
                    self.emit(ind + "    ", line)
                self.emit(ind, "else:")
                self.emit(ind + "    ", mem_guard)
                self._sync(ind + "        ", str(pc))
                self.emit(ind + "        ", mem_write)
                self._store_commit(ind + "    ", i, a, vt, c, y)
        elif kind == K_BRANCH:
            pc_next = f"n{i}"
            self.emit(ind, f"{pc_next} = {starget} if k{i} else {npc}")
        elif kind == K_JUMP:
            if wbank == 1:
                regs.write_const(dkey, npc)
            pc_next = str(starget)
        elif kind == K_INDIRECT:
            if wbank == 1:
                regs.write_const(dkey, npc)
            pc_next = f"g{i}"
        # K_ALU: write already folded into the execute section.  K_HALT:
        # pc advances to npc (pc_next default).
        self.lc_sync = y

        if dkey >= 0:
            self.crw += 1
            if self.event and (
                self._fwd_useful is None or i in self._fwd_useful
            ):
                self.emit(ind, f"rv{i} = {c} - {p.issue_to_ex}")
                self.emit(ind, f"ready[{dkey}] = rv{i}")
                self._fwd[dkey] = f"rv{i}"
            else:
                self.emit(ind, f"ready[{dkey}] = {c} - {p.issue_to_ex}")
                if self.event:
                    self._fwd.pop(dkey, None)
        self.nex += 1

        if kind == K_HALT:
            self._exit(ind, pc_next, '"h"')
            return

        if not self._wd_elide:
            self.emit(ind, f"if wd and base + {y} >= wdx:")
            self._exit(ind + "    ", pc_next, '"w"')
        elif self._wd_reload:
            # Trace tier: see the in-order emitter's tail.
            self.emit(ind, "if wd:")
            self.emit(ind + "    ", f"if base + {y} >= wdx:")
            self._exit(ind + "        ", pc_next, '"w"')
            self._exit(ind + "    ", pc_next, pc_next)

        if is_last:
            self._exit(ind, pc_next, pc_next)

    def _load_mem_timing(self, ind: str, i: int, a: str, x: str,
                         c: str) -> None:
        """Forwarding check + D-cache access + completion time for a load."""
        self.emit(ind, f"e{i} = get_inflight({a})")
        self.emit(ind, f"fw{i} = e{i} is not None and e{i}[1] > {x}")
        self.emit(ind, "cdc += 1")
        self._dcache_hit(ind, i, a)
        self.emit(ind, f"if fw{i}:")
        self.emit(ind + "    ", f"{c} = e{i}[0] + 1")
        self.emit(ind + "    ", f"t = {x} + 1")
        self.emit(ind + "    ", f"if t > {c}:")
        self.emit(ind + "        ", f"{c} = t")
        self.emit(ind, f"elif h{i}:")
        self.emit(ind + "    ", f"{c} = {x} + 2")
        self.emit(ind, "else:")
        self.emit(ind + "    ", f"t = {x} + 1")
        self.emit(ind + "    ", "if bf > t:")
        self.emit(ind + "        ", "t = bf")
        self.emit(ind + "    ", "bf = t + pen")
        self.emit(ind + "    ", f"{c} = bf + 1")

    def _store_commit(self, ind: str, i: int, a: str, vt: str, c: str,
                      y: str) -> None:
        """Non-MMIO store commit: words write, D-cache, LSQ in-flight entry."""
        try:
            const = int(vt)
        except ValueError:
            self.emit(ind, f"if {vt}.__class__ is int:")
            self.emit(ind + "    ",
                      f"words[{a}] = (({vt} + {_S}) & {_M}) - {_S}")
            self.emit(ind, "else:")
            self.emit(ind + "    ", f"words[{a}] = {vt}")
        else:
            self.emit(ind, f"words[{a}] = {_wrap_s32(const)}")
        self.emit(ind, "cdc += 1")
        self._dcache_store_commit(ind, i, a, y)
        self.emit(ind, f"inflight_stores[{a}] = ({c}, {y})")


# --- block discovery, compilation, and the persistent table -------------------


class _Geometry(NamedTuple):
    """Everything block code shape depends on besides the program itself."""

    ishift: int
    insets: int
    iassoc: int
    dshift: int
    dnsets: int
    dassoc: int
    tbase: int
    text_end: int


#: Upper bound on instructions fused into one generated function; longer
#: straight-line runs split at the cap (state is fully synced at every
#: block exit, so an artificial boundary is behaviourally invisible).
_MAX_BLOCK = 64

_EXEC_GLOBALS: dict[str, Any] = {
    "_trunc_div": _trunc_div,
    "_trunc_rem": _trunc_rem,
    "_fdiv": _fdiv,
    "_fsqrt": _fsqrt,
    "_M": _M,
    "_S": _S,
    "__builtins__": {"len": len, "min": min, "abs": abs, "int": int,
                     "float": float, "True": True, "False": False,
                     "None": None},
}


def _fname(engine: str, pc: int) -> str:
    return f"_b{pc:x}" if engine == "inorder" else f"_o{pc:x}"


def _leaders(program: "Program") -> set[int]:
    """Static basic-block leaders: CFG block starts when analyzable,
    else a linear scan over the fast plan (fuzz programs may violate the
    CFG analyzer's structural requirements)."""
    leaders = {program.entry}
    leaders.update(program.subtask_marks)
    try:
        cfg = build_cfg(program)
    except (AnalysisError, ReproError):
        fast = program.fast_plan()
        for fi in fast:
            kind, starget, npc = fi[0], fi[9], fi[8]
            if kind in _CONTROL_KINDS:
                leaders.add(npc)
                if starget is not None:
                    leaders.add(starget)
    else:
        for fn_cfg in cfg.functions.values():
            leaders.update(fn_cfg.blocks)
    return {a for a in leaders if program.contains(a)}


def _collect_block(
    program: "Program", start: int, stops: frozenset[int]
) -> list[tuple[int, Any]]:
    """Instructions of the block at ``start``: append until a control
    instruction, a stop address, the text end, or the fuse cap."""
    fast = program.fast_plan()
    tbase = program.text_base
    text_end = program.text_end
    insts: list[tuple[int, Any]] = []
    pc = start
    while True:
        fi = fast[(pc - tbase) >> 2]
        insts.append((pc, fi))
        if fi[0] in _CONTROL_KINDS or len(insts) >= _MAX_BLOCK:
            break
        pc += 4
        if pc in stops or pc >= text_end:
            break
    return insts


def _emit_block(
    engine: str, geom: _Geometry, params: Any, start: int,
    insts: list[tuple[int, Any]], sched: str = "scan",
) -> str:
    if engine == "inorder":
        return _InOrderEmitter(geom).emit_block(start, insts)
    return _OOOEmitter(
        geom, params, event=sched == "event"
    ).emit_block(start, insts)


class BlockTable:
    """Compiled blocks of one (program, engine, geometry, params, tier).

    ``blocks`` maps block-start pc to ``(function, length)``.
    ``safe_breaks`` is the set of addresses guaranteed never to be
    block-interior (sub-task marks + entry), i.e. the breakpoint sets the
    block dispatcher can honor exactly.  Superblock traces never contain
    a safe-break address at an interior position, so that guarantee
    survives trace promotion unchanged.

    On the trace tier, ``hot_counts`` profiles block dispatch counts;
    once a block crosses the hotness threshold, :meth:`promote` stitches
    the chain starting there into one trace function and installs it
    over the block entry, so the dispatchers need no second lookup.
    """

    def __init__(
        self,
        program: "Program",
        engine: str,
        geom: _Geometry,
        params: Any,
        namespace: dict[str, Any],
        blocks: dict[int, BlockEntry],
        tier: str = "block",
        disk_key: str | None = None,
        sched: str = "scan",
    ) -> None:
        self.program = program
        self.engine = engine
        self.geom = geom
        self.params = params
        self.blocks = blocks
        self.tier = tier
        self.disk_key = disk_key
        #: OOO timing-scheduler codegen this table was built for
        #: ("scan"/"event"; always "scan" for the in-order engine).
        self.sched = sched
        self._ns = namespace
        self.safe_breaks: frozenset[int] = (
            frozenset(program.subtask_marks) | {program.entry}
        )
        # Trace-tier state (inert on the block tier).
        self.hot_counts: dict[int, int] | None = None
        self.hot_threshold = 0
        #: head pc -> (fname, n_blocks, n_insts) for installed traces.
        self.traces_meta: dict[int, tuple[str, int, int]] = {}
        #: head pc -> generated source, for disk persistence.
        self.trace_sources: dict[int, str] = {}
        #: head pc -> compiled code object (marshalled on store).
        self.trace_codes: dict[int, Any] = {}
        self._no_trace: set[int] = set()
        # [calls, side exits]: bumped by the generated trace code itself.
        namespace.setdefault("_tr", [0, 0])
        # Side-exit pc -> count: bumped by the generated side-exit arms
        # (``repro cache stats`` surfaces the breakdown).
        sx: dict[int, int] = namespace.setdefault("_sx", {})
        namespace.setdefault("_sx_get", sx.get)
        _LIVE_TABLES.add(self)

    def promote(self, pc: int, entry: BlockEntry) -> BlockEntry:
        """Try to replace the hot block at ``pc`` with a stitched trace.

        Returns the installed trace entry, or ``entry`` unchanged when
        no profitable chain exists (single block, safe-break barrier).
        """
        if pc in self.traces_meta or pc in self._no_trace:
            return self.blocks.get(pc, entry)
        from repro.isa import tracejit

        traced = tracejit.compile_trace(self, pc)
        if traced is None:
            self._no_trace.add(pc)
            return entry
        return traced

    def trace_summary(self) -> dict[str, Any]:
        """Formation and runtime stats for the installed traces."""
        tr = self._ns.get("_tr", [0, 0])
        sx: dict[int, int] = self._ns.get("_sx", {})
        metas = list(self.traces_meta.values())
        n = len(metas)
        calls = int(tr[0])
        exits = int(tr[1])
        return {
            "traces": n,
            "mean_blocks": (sum(m[1] for m in metas) / n) if n else 0.0,
            "mean_insts": (sum(m[2] for m in metas) / n) if n else 0.0,
            "calls": calls,
            "side_exits": exits,
            "side_exit_rate": (exits / calls) if calls else 0.0,
            "trace_completions": calls - exits,
            "side_exit_pc": {
                f"{pc:#x}": count
                for pc, count in sorted(
                    sx.items(), key=lambda kv: (-kv[1], kv[0])
                )
            },
        }

    def block_at(self, pc: int) -> BlockEntry:
        """The block starting at ``pc``, compiling on demand.

        Dynamic targets (indirect jumps into addresses that were not
        static leaders) are compiled in-process and not persisted.
        """
        entry = self.blocks.get(pc)
        if entry is not None:
            return entry
        if not self.program.contains(pc):
            raise ReproError(f"no instruction at {pc:#x}")
        insts = _collect_block(self.program, pc, self.safe_breaks)
        source = _emit_block(
            self.engine, self.geom, self.params, pc, insts, self.sched
        )
        code = compile(source, f"<blockjit:{self.engine}:{pc:#x}>", "exec")
        exec(code, self._ns)  # noqa: S102 - executing our own codegen
        entry = (self._ns[_fname(self.engine, pc)], len(insts))
        self.blocks[pc] = entry
        return entry


def _disk_key(
    program: "Program", engine: str, geom: _Geometry,
    params_tuple: tuple | None, sched: str = "scan",
) -> str:
    from repro.snapshot.state import (
        FORMAT_VERSION,
        canonical_json,
        program_digest,
    )

    payload = {
        "format": FORMAT_VERSION,
        "codegen": CODEGEN_VERSION,
        "engine": engine,
        "program": program_digest(program),
        # program_digest intentionally omits the entry point (results in
        # the run cache key it separately); block boundaries depend on it.
        "entry": program.entry,
        "geom": list(geom),
        "params": list(params_tuple) if params_tuple is not None else None,
    }
    if engine == "ooo" and sched == "event":
        # Event-mode codegen keys separately; scan keys are unchanged so
        # existing cache entries stay valid.
        payload["sched"] = sched
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:24]


def _disk_path(engine: str, key: str) -> "Path":
    from repro.snapshot import runcache

    return runcache.cache_dir() / "blockjit" / f"{engine}-{key}.json"


def _load_disk(engine: str, key: str) -> dict | None:
    from repro.snapshot import runcache
    from repro.snapshot.state import FORMAT_VERSION

    if runcache.cache_disabled():
        return None
    try:
        payload = json.loads(_disk_path(engine, key).read_text())
    except (OSError, ValueError):
        runcache.STATS["blockjit_misses"] += 1
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != FORMAT_VERSION
        or payload.get("codegen") != CODEGEN_VERSION
        or payload.get("engine") != engine
    ):
        runcache.STATS["blockjit_misses"] += 1
        return None
    runcache.STATS["blockjit_hits"] += 1
    return payload


def _store_disk(engine: str, key: str, payload: dict) -> None:
    from repro.snapshot import runcache

    if runcache.cache_disabled():
        return
    runcache.atomic_write_json(_disk_path(engine, key), payload)
    runcache.STATS["blockjit_stores"] += 1


def _build_table(
    program: "Program", engine: str, geom: _Geometry, params: Any,
    params_tuple: tuple | None, tier: str = "block", sched: str = "scan",
) -> BlockTable:
    from repro.snapshot.state import FORMAT_VERSION

    key = _disk_key(program, engine, geom, params_tuple, sched)
    ns = dict(_EXEC_GLOBALS)
    blocks: dict[int, BlockEntry] = {}
    payload = _load_disk(engine, key)
    if payload is not None:
        code = None
        # Warm fast path: the marshaled code object skips compile(), which
        # dominates load time.  Marshal is interpreter-specific, so it is
        # only trusted under the same cache tag; anything else (older
        # entries, another Python) falls back to recompiling the source.
        if payload.get("python") == sys.implementation.cache_tag:
            try:
                code = marshal.loads(base64.b64decode(payload["code"]))
            except (KeyError, ValueError, EOFError, TypeError):
                code = None
        if code is None:
            code = compile(
                payload["source"], f"<blockjit:{engine}:{key}>", "exec"
            )
        exec(code, ns)  # noqa: S102 - executing our own (cached) codegen
        for spc, (fname, blen) in payload["blocks"].items():
            blocks[int(spc)] = (ns[fname], int(blen))
        return _finish_table(
            BlockTable(program, engine, geom, params, ns, blocks,
                       tier=tier, disk_key=key, sched=sched)
        )

    leaders = _leaders(program)
    stops = frozenset(leaders)
    pending = sorted(leaders)
    seen = set(pending)
    sources: list[str] = []
    meta: dict[str, list] = {}
    while pending:
        start = pending.pop(0)
        insts = _collect_block(program, start, stops)
        sources.append(_emit_block(engine, geom, params, start, insts, sched))
        meta[str(start)] = [_fname(engine, start), len(insts)]
        # A run split at the fuse cap continues in a follow-on block.
        last_pc, last_fi = insts[-1]
        cont = last_pc + 4
        if (
            last_fi[0] not in _CONTROL_KINDS
            and cont not in seen
            and program.contains(cont)
        ):
            seen.add(cont)
            pending.append(cont)
    source = "\n".join(sources)
    code = compile(source, f"<blockjit:{engine}:{key}>", "exec")
    exec(code, ns)  # noqa: S102 - executing our own codegen
    for spc, (fname, blen) in meta.items():
        blocks[int(spc)] = (ns[fname], int(blen))
    _store_disk(engine, key, {
        "format": FORMAT_VERSION,
        "codegen": CODEGEN_VERSION,
        "engine": engine,
        "source": source,
        "python": sys.implementation.cache_tag,
        "code": base64.b64encode(marshal.dumps(code)).decode("ascii"),
        "blocks": meta,
    })
    return _finish_table(
        BlockTable(program, engine, geom, params, ns, blocks,
                   tier=tier, disk_key=key, sched=sched)
    )


def _finish_table(table: BlockTable) -> BlockTable:
    """Activate trace-tier state (profiling + warm traces) when selected."""
    if table.tier == "trace":
        from repro.isa import tracejit

        table.hot_counts = {}
        table.hot_threshold = tracejit.HOT_THRESHOLD
        tracejit.load_traces(table)
    return table


def block_table(
    machine: Any, engine: str, params: Any = None, tier: str | None = None,
) -> BlockTable:
    """The (memoized) compiled block table for ``machine``'s program.

    Memoized on the Program keyed by engine, cache geometry, pipeline
    parameters, and tier, so cores sharing a program (and VISA instances
    sharing a workload) compile once per process; the generated source
    additionally persists under ``.repro_cache/blockjit/``.  ``tier``
    defaults to the active :func:`jit_tier` (an explicit ``"off"`` is
    clamped to ``"block"`` — callers gate on :func:`jit_enabled`).
    """
    if tier is None:
        tier = jit_tier()
    if tier == "off":
        tier = "block"
    if engine == "ooo":
        # Lazy import: repro.pipelines.ooo.__init__ imports core, which
        # imports this module.
        from repro.pipelines.ooo.sched import ooo_sched

        sched = ooo_sched()
    else:
        sched = "scan"
    program = machine.program
    ic = machine.icache.config
    dc = machine.dcache.config
    geom = _Geometry(
        ic.block_shift, ic.num_sets, ic.assoc,
        dc.block_shift, dc.num_sets, dc.assoc,
        program.text_base, program.text_end,
    )
    params_tuple = tuple(astuple(params)) if params is not None else None
    memo_key = (engine, geom, params_tuple, tier, sched)
    tables = program._blockjit_tables  # noqa: SLF001 - cooperative memo
    table = tables.get(memo_key)
    if table is None:
        table = _build_table(
            program, engine, geom, params, params_tuple, tier, sched
        )
        tables[memo_key] = table
    return table


# --- dispatchers --------------------------------------------------------------


def run_inorder(
    core: Any,
    table: BlockTable,
    honor_watchdog: bool = True,
    break_addrs: frozenset[int] | None = None,
) -> Any:
    """Block-dispatch drive of an :class:`InOrderCore` segment.

    Only called for full-run segments (``max_instructions is None``) with
    ``break_addrs`` (if any) a subset of ``table.safe_breaks``; the
    wrapper in :mod:`repro.pipelines.inorder` guarantees both.
    """
    from repro.pipelines.inorder import RunResult

    state = core.state
    machine = core.machine
    mmio = machine.mmio
    start_cycle = state.now
    if state.halted:
        return RunResult("halt", start_cycle, start_cycle, 0)

    ic = machine.icache
    dc = machine.dcache
    ft = core._fast_timing  # noqa: SLF001 - shared with the interp path
    base = core._timing_base  # noqa: SLF001
    tg = core.train_gshare
    ti = core.train_indirect
    wd = (
        honor_watchdog
        and not mmio.exceptions_masked
        and mmio._wd_enabled  # noqa: SLF001
    )
    st: list[Any] = [
        ft[0], ft[1], ft[2], ft[3], ft[4], ft[5], ft[6], ft[7],
        ic._tick, dc._tick,  # noqa: SLF001
        0, 0, 0, 0,  # ihits, imiss, dhits, dmiss
        0, 0, 0, 0,  # fetched, c_regread, c_regwrite, c_dcache
        state.pc, 0,  # pc, executed
        wd, mmio._wd_expiry,  # noqa: SLF001
    ]
    words = machine.memory._words  # noqa: SLF001
    env = (
        words, words.get,
        ic._sets, dc._sets,  # noqa: SLF001
        mmio, mmio.read, mmio.write,
        machine.data_read, machine.data_write,
        core.stall_cycles, base, honor_watchdog,
        tg.update if tg is not None else None,
        ti.update if ti is not None else None,
    )
    ir = state.int_regs
    fr = state.fp_regs
    ready = core._fast_ready  # noqa: SLF001
    blocks = table.blocks
    block_at = table.block_at
    counts = table.hot_counts
    hot = table.hot_threshold
    pc = state.pc
    try:
        while True:
            entry = blocks.get(pc)
            if entry is None:
                entry = block_at(pc)
            if counts is not None:
                c = counts.get(pc, 0) + 1
                counts[pc] = c
                if c == hot:
                    entry = table.promote(pc, entry)
            r = entry[0](ir, fr, ready, st, env)
            if r.__class__ is int:
                pc = r
                st[18] = pc
                if break_addrs is not None and pc in break_addrs:
                    return RunResult(
                        "breakpoint", start_cycle, base + st[3] + 1, st[19]
                    )
                if st[19] > _RUNAWAY:  # pragma: no cover - runaway guard
                    raise SimulationError(
                        "instruction budget exceeded (runaway?)"
                    )
                continue
            now = base + st[3] + 1
            if r == "h":
                state.halted = True
                return RunResult("halt", start_cycle, now, st[19])
            return RunResult(
                "watchdog", start_cycle, now, st[19],
                exception_cycle=min(now, st[21]),
            )
    finally:
        # Mirror the interpreter's finally-flush exactly (shared
        # _fast_timing/_fast_ready keep the two paths interleavable).
        ft[0] = st[0]
        ft[1] = st[1]
        ft[2] = st[2]
        ft[3] = st[3]
        ft[4] = st[4]
        ft[5] = st[5]
        ft[6] = st[6]
        ft[7] = st[7]
        ic._tick = st[8]  # noqa: SLF001
        dc._tick = st[9]  # noqa: SLF001
        ics = ic.stats
        ics.hits += st[10]
        ics.misses += st[11]
        dcs = dc.stats
        dcs.hits += st[12]
        dcs.misses += st[13]
        state.pc = st[18]
        state.now = base + st[3] + 1
        state.instret += st[19]
        if st[14]:
            counters = state.counters
            k_ic, k_fe, k_dc, k_rr, k_rw, k_fu = core._ckeys  # noqa: SLF001
            counters[k_ic] += st[14]
            counters[k_fe] += st[14]
            if st[19]:
                counters[k_rr] += st[15]
                counters[k_fu] += st[19]
            if st[16]:
                counters[k_rw] += st[16]
            if st[17]:
                counters[k_dc] += st[17]


def run_ooo(core: Any, table: BlockTable, honor_watchdog: bool = True) -> Any:
    """Block-dispatch drive of a :class:`ComplexCore` complex-mode segment."""
    from repro.pipelines.inorder import RunResult

    state = core.state
    machine = core.machine
    mmio = machine.mmio
    params = core.params
    start_cycle = state.now
    if state.halted:
        return RunResult("halt", start_cycle, start_cycle, 0)

    ic = machine.icache
    dc = machine.dcache
    base = state.now
    event = table.sched == "event"
    gshare = core.gshare
    indirect = core.indirect
    dis_used: dict[int, int] = {}
    iss_used: dict[int, int] = {}
    port_used: dict[int, int] = {}
    inflight_stores: dict[int, tuple[int, int]] = {}
    ready = [0] * 64
    wd = (
        honor_watchdog
        and not mmio.exceptions_masked
        and mmio._wd_enabled  # noqa: SLF001
    )
    st: list[Any] = [
        0, 0, 0, 0, -1, 0, 0,  # bf, fc, gd, gc, gb, rd, lc
        ic._tick, dc._tick,  # noqa: SLF001
        0, 0, 0, 0,  # ihits, imiss, dhits, dmiss
        0, 0, 0, 0, 0, 0,  # cg, cbp, crr, crw, cdc, nmem
        state.pc, 0,  # pc, executed
        wd, mmio._wd_expiry,  # noqa: SLF001
    ]
    words = machine.memory._words  # noqa: SLF001
    if event:
        # Preallocated rings (-1 sentinel = not yet full at that cursor)
        # replace the occupancy deques; the commit width map is replaced
        # entirely by the in-code frontier pair st[6]/st[26]; predictor
        # tables are passed raw (reads/updates are inlined in the
        # generated code, histories live in st[27]/st[28]).
        robq = [-1] * params.rob_entries
        iqq = [-1] * params.iq_entries
        lsqq = [-1] * params.lsq_entries
        st += [0, 0, 0, 0, gshare.history, indirect.history]
        env: tuple[Any, ...] = (
            words, words.get,
            ic._sets, dc._sets,  # noqa: SLF001
            mmio, mmio.read, mmio.write,
            machine.data_read, machine.data_write,
            core.stall_cycles, base, honor_watchdog,
            gshare.table, indirect.table, indirect.table.get,
            dis_used, dis_used.get, iss_used, iss_used.get,
            port_used, port_used.get,
            robq, iqq, lsqq,
            inflight_stores, inflight_stores.get,
        )
    else:
        robq = []
        com_used: dict[int, int] = {}
        rob_commits: deque[int] = deque(maxlen=params.rob_entries)
        iq_issues: deque[int] = deque(maxlen=params.iq_entries)
        lsq_commits: deque[int] = deque(maxlen=params.lsq_entries)
        env = (
            words, words.get,
            ic._sets, dc._sets,  # noqa: SLF001
            mmio, mmio.read, mmio.write,
            machine.data_read, machine.data_write,
            core.stall_cycles, base, honor_watchdog,
            gshare.predict, gshare.update,
            indirect.predict, indirect.update,
            dis_used, dis_used.get, iss_used, iss_used.get,
            com_used, com_used.get, port_used, port_used.get,
            rob_commits, rob_commits.append, iq_issues, iq_issues.append,
            lsq_commits, lsq_commits.append,
            inflight_stores, inflight_stores.get,
        )
    ir = state.int_regs
    fr = state.fp_regs
    blocks = table.blocks
    block_at = table.block_at
    counts = table.hot_counts
    hot = table.hot_threshold
    pc = state.pc
    pruned_at = 0
    try:
        while True:
            entry = blocks.get(pc)
            if entry is None:
                entry = block_at(pc)
            if counts is not None:
                c = counts.get(pc, 0) + 1
                counts[pc] = c
                if c == hot:
                    entry = table.promote(pc, entry)
            r = entry[0](ir, fr, ready, st, env)
            if r.__class__ is int:
                pc = r
                st[19] = pc
                if event and st[20] - pruned_at >= _PRUNE_STRIDE:
                    # Keep the width maps cache-resident: every future
                    # dispatch probe starts at >= max(group_done, oldest
                    # live ROB commit) + 1 (both monotone; the ROB clamp
                    # applies forever once 128 committed), issue/port
                    # probes one cycle later still, so keys below those
                    # floors are dead and safe to drop between blocks.
                    pruned_at = st[20]
                    t = robq[st[23]]
                    floor = st[2] if st[2] > t else t
                    floor += 1
                    if len(dis_used) > _PRUNE_MIN:
                        keep = {
                            k: v for k, v in dis_used.items() if k >= floor
                        }
                        dis_used.clear()
                        dis_used.update(keep)
                    floor += 1
                    for used in (iss_used, port_used):
                        if len(used) > _PRUNE_MIN:
                            keep = {
                                k: v for k, v in used.items() if k >= floor
                            }
                            used.clear()
                            used.update(keep)
                if st[20] > _RUNAWAY:  # pragma: no cover - runaway guard
                    raise SimulationError(
                        "instruction budget exceeded (runaway?)"
                    )
                continue
            now = base + st[6]
            if r == "h":
                state.halted = True
                return RunResult("halt", start_cycle, now, st[20])
            return RunResult(
                "watchdog", start_cycle, now, st[20],
                exception_cycle=min(now, st[22]),
            )
    finally:
        if event:
            gshare.history = st[27]
            indirect.history = st[28]
        state.pc = st[19]
        state.now = base + st[6]
        state.instret += st[20]
        ic._tick = st[7]  # noqa: SLF001
        dc._tick = st[8]  # noqa: SLF001
        ics = ic.stats
        ics.hits += st[9]
        ics.misses += st[10]
        dcs = dc.stats
        dcs.hits += st[11]
        dcs.misses += st[12]
        counters = state.counters
        executed = st[20]
        if executed:
            counters["rename"] += executed
            counters["rob_write"] += executed
            counters["iq"] += executed
            counters["regread"] += st[15]
            counters["fu"] += executed
            counters["commit"] += executed
        if st[13]:
            counters["icache"] += st[13]
            counters["fetch"] += st[13]
        if st[14]:
            counters["bpred"] += st[14]
        if st[18]:
            counters["lsq"] += st[18]
        if st[17]:
            counters["dcache"] += st[17]
        if st[16]:
            counters["regwrite"] += st[16]


# --- cache-observability helpers (``repro cache stats`` / ``clear``) ----------


def disk_cache_stats() -> dict:
    """On-disk blockjit cache stats plus in-process hit/miss/store counters.

    ``tiers`` breaks the totals down by codegen tier: block-table
    entries (``{engine}-{key}.json``) vs stitched-trace entries
    (``{engine}-{key}.traces.json``).
    """
    from repro.snapshot import runcache

    directory = runcache.cache_dir() / "blockjit"
    entries = 0
    total = 0
    tiers = {
        "block": {"entries": 0, "bytes": 0},
        "trace": {"entries": 0, "bytes": 0},
    }
    if directory.is_dir():
        for path in directory.iterdir():
            if path.is_file() and path.suffix == ".json":
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                total += size
                entries += 1
                tier = ("trace" if path.name.endswith(".traces.json")
                        else "block")
                tiers[tier]["entries"] += 1
                tiers[tier]["bytes"] += size
    # Runtime trace behaviour of live in-process tables (the CLI shows
    # zeros here in a fresh process; experiments/benchmarks embedding
    # the simulator see the live counters).
    calls = exits = 0
    side_exit_pc: dict[str, int] = {}
    for table in list(_LIVE_TABLES):
        if table.tier != "trace" or not table.traces_meta:
            continue
        summary = table.trace_summary()
        calls += summary["calls"]
        exits += summary["side_exits"]
        for pc, count in summary["side_exit_pc"].items():
            side_exit_pc[pc] = side_exit_pc.get(pc, 0) + count
    return {
        "directory": str(directory),
        "entries": entries,
        "bytes": total,
        "tiers": tiers,
        "hits": int(runcache.STATS["blockjit_hits"]),
        "misses": int(runcache.STATS["blockjit_misses"]),
        "stores": int(runcache.STATS["blockjit_stores"]),
        "trace_hits": int(runcache.STATS["tracejit_hits"]),
        "trace_misses": int(runcache.STATS["tracejit_misses"]),
        "trace_stores": int(runcache.STATS["tracejit_stores"]),
        "trace_calls": calls,
        "trace_side_exits": exits,
        "trace_completions": calls - exits,
        "side_exit_pc": dict(sorted(
            side_exit_pc.items(), key=lambda kv: (-kv[1], kv[0])
        )),
    }


def clear_disk_cache() -> tuple[int, int]:
    """Delete the blockjit codegen cache; ``(files_removed, bytes_freed)``."""
    from repro.snapshot import runcache

    removed = freed = 0
    directory = runcache.cache_dir() / "blockjit"
    if not directory.is_dir():
        return 0, 0
    for path in directory.iterdir():
        if path.is_file() and path.suffix in (".json", ".tmp"):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
    try:
        directory.rmdir()
    except OSError:
        pass
    return removed, freed


__all__ = [
    "BlockTable",
    "CODEGEN_VERSION",
    "DEFAULT_TIER",
    "TIERS",
    "block_table",
    "clear_disk_cache",
    "disk_cache_stats",
    "jit_enabled",
    "jit_override",
    "jit_tier",
    "run_inorder",
    "run_ooo",
    "tier_override",
]
