"""Architectural (functional) semantics of RTP-32 instructions.

Both pipeline simulators call :func:`execute` so the functional behaviour of
the simple and complex cores is identical by construction; the pipelines
differ only in *timing*.

Integer arithmetic wraps to 32-bit two's complement.  Integer division
truncates toward zero (C semantics).  Floating point uses the host's IEEE
doubles; the paper's benchmarks are single precision, but only relative
timing matters for the reproduction and the data path width does not affect
the cycle model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

_U32 = 0xFFFFFFFF


def to_s32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def to_u32(value: int) -> int:
    """Interpret an integer as unsigned 32-bit."""
    return value & _U32


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_rem(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer remainder by zero")
    return a - _trunc_div(a, b) * b


@dataclass
class ExecResult:
    """Outcome of architecturally executing one instruction.

    Attributes:
        value: Value for the destination register (None if no destination,
            or for loads, where memory supplies the value later).
        eff_addr: Effective address for loads/stores (else None).
        store_value: Value to write to memory for stores (else None).
        taken: For conditional branches, whether the branch is taken.
        target: Next-PC override for taken branches and jumps (else None —
            fall through to PC + 4).
        halt: True when the instruction is ``halt``.
    """

    value: object = None
    eff_addr: int | None = None
    store_value: object = None
    taken: bool | None = None
    target: int | None = None
    halt: bool = False


def execute(
    inst: Instruction,
    read_int: Callable[[int], int],
    read_fp: Callable[[int], float],
) -> ExecResult:
    """Execute ``inst`` against register-read callbacks.

    The callbacks receive a register number and return its current value;
    register *writes* are the caller's responsibility (pipelines commit
    results at different times).
    """
    op = inst.op
    handler = _HANDLERS[op]
    return handler(inst, read_int, read_fp)


# --- handler implementations -------------------------------------------------

def _h_alu3(fn):
    def handler(inst, ri, rf):
        return ExecResult(value=to_s32(fn(ri(inst.rs), ri(inst.rt))))

    return handler


def _h_shift_imm(fn):
    def handler(inst, ri, rf):
        return ExecResult(value=to_s32(fn(to_u32(ri(inst.rt)), inst.shamt)))

    return handler


def _h_shift_var(fn):
    def handler(inst, ri, rf):
        return ExecResult(
            value=to_s32(fn(to_u32(ri(inst.rt)), ri(inst.rs) & 0x1F))
        )

    return handler


def _h_imm(fn, zero_extend=False):
    def handler(inst, ri, rf):
        imm = inst.imm & 0xFFFF if zero_extend else inst.imm
        return ExecResult(value=to_s32(fn(ri(inst.rs), imm)))

    return handler


def _h_branch(cond):
    def handler(inst, ri, rf):
        taken = cond(ri(inst.rs), ri(inst.rt))
        return ExecResult(
            taken=taken, target=inst.branch_target() if taken else None
        )

    return handler


def _h_fp3(fn):
    def handler(inst, ri, rf):
        return ExecResult(value=fn(rf(inst.rs), rf(inst.rt)))

    return handler


def _h_fp2(fn):
    def handler(inst, ri, rf):
        return ExecResult(value=fn(rf(inst.rs)))

    return handler


def _h_fcmp(fn):
    def handler(inst, ri, rf):
        return ExecResult(value=1 if fn(rf(inst.rs), rf(inst.rt)) else 0)

    return handler


def _fsqrt(x: float) -> float:
    if x < 0:
        raise SimulationError(f"fsqrt of negative value {x}")
    return math.sqrt(x)


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise SimulationError("floating-point division by zero")
    return a / b


def _ftoi(x: float) -> int:
    return to_s32(int(x))


def _h_load(inst, ri, rf):
    return ExecResult(eff_addr=to_u32(ri(inst.rs) + inst.imm))


def _h_store_int(inst, ri, rf):
    return ExecResult(
        eff_addr=to_u32(ri(inst.rs) + inst.imm), store_value=ri(inst.rt)
    )


def _h_store_fp(inst, ri, rf):
    return ExecResult(
        eff_addr=to_u32(ri(inst.rs) + inst.imm), store_value=rf(inst.rt)
    )


def _h_j(inst, ri, rf):
    return ExecResult(target=inst.jump_target())


def _h_jal(inst, ri, rf):
    return ExecResult(value=inst.addr + 4, target=inst.jump_target())


def _h_jr(inst, ri, rf):
    return ExecResult(target=to_u32(ri(inst.rs)))


def _h_jalr(inst, ri, rf):
    return ExecResult(value=inst.addr + 4, target=to_u32(ri(inst.rs)))


def _h_halt(inst, ri, rf):
    return ExecResult(halt=True)


_HANDLERS = {
    Op.ADD: _h_alu3(lambda a, b: a + b),
    Op.SUB: _h_alu3(lambda a, b: a - b),
    Op.MUL: _h_alu3(lambda a, b: a * b),
    Op.DIV: _h_alu3(_trunc_div),
    Op.REM: _h_alu3(_trunc_rem),
    Op.AND: _h_alu3(lambda a, b: to_u32(a) & to_u32(b)),
    Op.OR: _h_alu3(lambda a, b: to_u32(a) | to_u32(b)),
    Op.XOR: _h_alu3(lambda a, b: to_u32(a) ^ to_u32(b)),
    Op.NOR: _h_alu3(lambda a, b: ~(to_u32(a) | to_u32(b))),
    Op.SLT: _h_alu3(lambda a, b: 1 if a < b else 0),
    Op.SLTU: _h_alu3(lambda a, b: 1 if to_u32(a) < to_u32(b) else 0),
    Op.SLL: _h_shift_imm(lambda a, s: a << s),
    Op.SRL: _h_shift_imm(lambda a, s: a >> s),
    Op.SRA: _h_shift_imm(lambda a, s: to_s32(a) >> s),
    Op.SLLV: _h_shift_var(lambda a, s: a << s),
    Op.SRLV: _h_shift_var(lambda a, s: a >> s),
    Op.SRAV: _h_shift_var(lambda a, s: to_s32(a) >> s),
    Op.ADDI: _h_imm(lambda a, i: a + i),
    Op.SLTI: _h_imm(lambda a, i: 1 if a < i else 0),
    Op.SLTIU: _h_imm(lambda a, i: 1 if to_u32(a) < to_u32(i) else 0),
    Op.ANDI: _h_imm(lambda a, i: to_u32(a) & i, zero_extend=True),
    Op.ORI: _h_imm(lambda a, i: to_u32(a) | i, zero_extend=True),
    Op.XORI: _h_imm(lambda a, i: to_u32(a) ^ i, zero_extend=True),
    Op.LUI: lambda inst, ri, rf: ExecResult(
        value=to_s32((inst.imm & 0xFFFF) << 16)
    ),
    Op.LW: _h_load,
    Op.FLW: _h_load,
    Op.SW: _h_store_int,
    Op.FSW: _h_store_fp,
    Op.BEQ: _h_branch(lambda a, b: a == b),
    Op.BNE: _h_branch(lambda a, b: a != b),
    Op.BLEZ: _h_branch(lambda a, b: a <= 0),
    Op.BGTZ: _h_branch(lambda a, b: a > 0),
    Op.BLT: _h_branch(lambda a, b: a < b),
    Op.BGE: _h_branch(lambda a, b: a >= b),
    Op.J: _h_j,
    Op.JAL: _h_jal,
    Op.JR: _h_jr,
    Op.JALR: _h_jalr,
    Op.FADD: _h_fp3(lambda a, b: a + b),
    Op.FSUB: _h_fp3(lambda a, b: a - b),
    Op.FMUL: _h_fp3(lambda a, b: a * b),
    Op.FDIV: _h_fp3(_fdiv),
    Op.FSQRT: _h_fp2(_fsqrt),
    Op.FABS: _h_fp2(abs),
    Op.FNEG: _h_fp2(lambda a: -a),
    Op.FMOV: _h_fp2(lambda a: a),
    Op.FEQ: _h_fcmp(lambda a, b: a == b),
    Op.FLT_: _h_fcmp(lambda a, b: a < b),
    Op.FLE: _h_fcmp(lambda a, b: a <= b),
    Op.ITOF: lambda inst, ri, rf: ExecResult(value=float(ri(inst.rs))),
    Op.FTOI: lambda inst, ri, rf: ExecResult(value=_ftoi(rf(inst.rs))),
    Op.HALT: _h_halt,
}


__all__ = ["execute", "ExecResult", "to_s32", "to_u32"]
