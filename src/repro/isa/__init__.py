"""RTP-32: the RISC instruction set used throughout this reproduction.

The paper uses the SimpleScalar PISA instruction set (a MIPS derivative)
compiled with gcc.  We substitute RTP-32, a MIPS-like 32-bit RISC ISA with:

* 32 integer registers (``r0`` hardwired to zero) and 32 FP registers,
* fixed 4-byte instructions in R/I/J formats with a full binary
  encoder/decoder,
* MIPS R10K execution latencies (Table 1 of the paper),
* backward-taken / forward-not-taken static-prediction-friendly branches.

Public entry points:

* :func:`repro.isa.assembler.assemble` — assembly text -> :class:`Program`
* :class:`repro.isa.program.Program` — loadable binary image with symbols,
  loop-bound annotations, and sub-task markers
* :func:`repro.isa.encoding.encode` / :func:`repro.isa.encoding.decode`
"""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

__all__ = [
    "assemble",
    "disassemble",
    "encode",
    "decode",
    "Instruction",
    "Op",
    "Program",
]
