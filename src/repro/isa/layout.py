"""Memory map of the simulated machine.

The layout mirrors a classic MIPS/SimpleScalar process image: text low,
static data above it, stack growing down from high memory, and a page of
memory-mapped device registers at the top of the address space.

Memory-mapped registers (paper §2.2 and §4.3):

========================  ==========================================
``WATCHDOG_COUNT``        watchdog counter; hardware decrements it every
                          cycle while enabled; reaching zero raises a
                          missed-checkpoint exception (if unmasked)
``WATCHDOG_CTRL``         bit 0 enables the watchdog
``CYCLE_COUNT``           free-running cycle counter; writes reset it
``CONSOLE_OUT``           debug output port (writes are logged)
``FREQ_CUR``              current frequency, Hz (set by the runtime)
``FREQ_REC``              recovery frequency, Hz (set by the runtime)
``WATCHDOG_ADD``          write-only: atomically adds the written value
                          to ``WATCHDOG_COUNT`` (sub-task snippets use
                          this to advance the interim deadline)
========================  ==========================================
"""

from __future__ import annotations

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_FFF0
STACK_SIZE = 1 << 20  # reserved; the simulator only checks alignment

MMIO_BASE = 0xFFFF_0000

WATCHDOG_COUNT = MMIO_BASE + 0x00
WATCHDOG_CTRL = MMIO_BASE + 0x04
CYCLE_COUNT = MMIO_BASE + 0x08
CONSOLE_OUT = MMIO_BASE + 0x0C
FREQ_CUR = MMIO_BASE + 0x10
FREQ_REC = MMIO_BASE + 0x14
WATCHDOG_ADD = MMIO_BASE + 0x1C

#: Data-segment symbols created automatically when a program uses sub-task
#: markers.  ``__visa_incr[k]`` holds the watchdog increment (cycles) that
#: sub-task k's prologue snippet adds; ``__visa_aet[k]`` receives the actual
#: execution time (cycles) measured for sub-task k.
VISA_INCR_SYMBOL = "__visa_incr"
VISA_AET_SYMBOL = "__visa_aet"


def is_mmio(addr: int) -> bool:
    """True when ``addr`` falls in the memory-mapped device page."""
    return addr >= MMIO_BASE
