"""Binary encoding and decoding of RTP-32 instructions.

All instructions are 32 bits:

* R-format: ``opcode[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]``
* I-format: ``opcode[31:26] rs[25:21] rt[20:16] imm[15:0]``
* J-format: ``opcode[31:26] target[25:0]``
* F-format: R-format layout under opcode 0x11 (fs/ft/fd in rs/rt/rd slots).

Encoding and decoding round-trip exactly (property-tested), which lets the
program image store plain 32-bit words like a real binary.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import BY_ENCODING, INFO, Fmt, Op

_MASK16 = 0xFFFF
_MASK26 = 0x3FFFFFF


def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < 32:
        raise EncodingError(f"{what} out of range: {value}")


def encode(inst: Instruction) -> int:
    """Encode ``inst`` into a 32-bit instruction word.

    Raises:
        EncodingError: if a field does not fit its encoding slot.
    """
    info = INFO[inst.op]
    for value, what in ((inst.rd, "rd"), (inst.rs, "rs"), (inst.rt, "rt")):
        _check_reg(value, what)
    if info.fmt in (Fmt.R, Fmt.F):
        if not 0 <= inst.shamt < 32:
            raise EncodingError(f"shamt out of range: {inst.shamt}")
        assert info.funct is not None
        return (
            (info.opcode << 26)
            | (inst.rs << 21)
            | (inst.rt << 16)
            | (inst.rd << 11)
            | (inst.shamt << 6)
            | info.funct
        )
    if info.fmt is Fmt.I:
        if not -(1 << 15) <= inst.imm < (1 << 16):
            raise EncodingError(
                f"immediate out of range for {inst.op.value}: {inst.imm}"
            )
        return (
            (info.opcode << 26)
            | (inst.rs << 21)
            | (inst.rt << 16)
            | (inst.imm & _MASK16)
        )
    # J-format.
    if not 0 <= inst.target <= _MASK26:
        raise EncodingError(f"jump target out of range: {inst.target:#x}")
    return (info.opcode << 26) | inst.target


def decode(word: int, addr: int | None = None) -> Instruction:
    """Decode a 32-bit instruction word into an :class:`Instruction`.

    Args:
        word: The instruction word.
        addr: Optional address to attach (needed to resolve branch targets).

    Raises:
        EncodingError: if the word is not a valid RTP-32 instruction.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = (word >> 26) & 0x3F
    funct = word & 0x3F
    info = BY_ENCODING.get((opcode, funct))
    if info is None or info.fmt is Fmt.I or info.fmt is Fmt.J:
        info = BY_ENCODING.get((opcode, None))
    if info is None:
        raise EncodingError(
            f"unknown instruction word {word:#010x} "
            f"(opcode {opcode:#04x}, funct {funct:#04x})"
        )
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    if info.fmt in (Fmt.R, Fmt.F):
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        return Instruction(info.op, rd=rd, rs=rs, rt=rt, shamt=shamt, addr=addr)
    if info.fmt is Fmt.I:
        imm = word & _MASK16
        if imm >= 1 << 15:  # sign-extend
            imm -= 1 << 16
        # Logical immediates are zero-extended by the semantics layer; the
        # decoded field keeps the signed view so encode/decode round-trips.
        return Instruction(info.op, rs=rs, rt=rt, imm=imm, addr=addr)
    return Instruction(info.op, target=word & _MASK26, addr=addr)


def is_valid_word(word: int) -> bool:
    """True when ``word`` decodes to a valid instruction."""
    try:
        decode(word)
    except EncodingError:
        return False
    return True


__all__ = ["encode", "decode", "is_valid_word"]
