"""Two-pass assembler for RTP-32.

Supported syntax
----------------

* Comments: ``#`` to end of line.
* Labels: ``name:`` optionally followed by an instruction.
* Segments: ``.text`` / ``.data``.
* Data directives: ``.word v, ...`` (integers or symbols), ``.float x, ...``,
  ``.space nbytes``, ``.align pow2``, ``.globl name`` (accepted, ignored).
* Analysis annotations:

  - ``.loopbound N`` — attaches a maximum iteration count to the next label
    defined in the text segment (the loop header).
  - ``.subtask K`` — marks the start of sub-task ``K`` *and* emits the
    standard sub-task prologue snippet (reset cycle counter, record the
    previous sub-task's actual execution time, advance the watchdog by the
    increment from ``__visa_incr[K]``).  See paper §2.2 and §4.3.
  - ``.taskend`` — emits the task epilogue snippet (record the final
    sub-task's AET, disable the watchdog).
  - ``.frame N`` — declares the stack-frame size (bytes) of the function
    starting at the current text address; ``repro lint`` cross-checks it
    against the prologue's actual ``sp`` adjustment.

* Pseudo-instructions: ``li``, ``la``, ``move``, ``not``, ``neg``, ``b``,
  ``beqz``, ``bnez``, ``bgt``, ``ble``, ``subi``, ``nop``.
* ``%hi(sym)`` / ``%lo(sym)`` relocation operators in immediates.

Sub-task snippets use the reserved registers ``at``, ``k0``, ``k1`` so they
never clobber program state, mirroring real runtime-system conventions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa import layout
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import BY_NAME, Fmt, OpInfo
from repro.isa.program import Program
from repro.isa.registers import parse_fp_reg, parse_int_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_HILO_RE = re.compile(r"^%(hi|lo)\(\s*([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?\s*\)$")
_MEM_RE = re.compile(r"^(.*)\(\s*(\$?\w+)\s*\)$")
_SYM_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

#: Maximum sub-tasks a program may declare (sizes the auto-allocated
#: ``__visa_incr`` / ``__visa_aet`` arrays).
MAX_SUBTASKS = 64


@dataclass
class _PendingInst:
    """One concrete instruction awaiting pass-2 encoding."""

    mnemonic: str
    operands: list[str]
    line: int
    text: str
    addr: int = 0


@dataclass
class _DataItem:
    addr: int
    value: object  # int | float | str (symbol reference)
    line: int


@dataclass
class _Assembler:
    source: str
    text_base: int
    data_base: int
    insts: list[_PendingInst] = field(default_factory=list)
    data_items: list[_DataItem] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    loop_bounds: dict[int, int] = field(default_factory=dict)
    subtask_marks: dict[int, int] = field(default_factory=dict)
    source_map: dict[int, tuple[int, str]] = field(default_factory=dict)
    frame_sizes: dict[int, int] = field(default_factory=dict)

    def run(self) -> Program:
        self._pass1()
        self._allocate_visa_arrays()
        words = self._pass2()
        entry = self.symbols.get("main", self.symbols.get("_start", self.text_base))
        return Program(
            words=words,
            data={item.addr: self._data_value(item) for item in self.data_items},
            symbols=dict(self.symbols),
            loop_bounds=dict(self.loop_bounds),
            subtask_marks=dict(self.subtask_marks),
            entry=entry,
            text_base=self.text_base,
            data_base=self.data_base,
            source_map=dict(self.source_map),
            frame_sizes=dict(self.frame_sizes),
        )

    # -- pass 1 ---------------------------------------------------------------

    def _pass1(self) -> None:
        segment = "text"
        text_addr = self.text_base
        data_addr = self.data_base
        pending_loopbound: int | None = None
        max_subtask = -1

        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                name, line = match.group(1), match.group(2).strip()
                if name in self.symbols:
                    raise AssemblerError(f"duplicate label {name!r}", lineno)
                if segment == "text":
                    self.symbols[name] = text_addr
                    if pending_loopbound is not None:
                        self.loop_bounds[text_addr] = pending_loopbound
                        pending_loopbound = None
                else:
                    self.symbols[name] = data_addr
            if not line:
                continue

            parts = line.split(None, 1)
            head = parts[0].lower()
            rest = parts[1].strip() if len(parts) > 1 else ""

            if head == ".text":
                segment = "text"
            elif head == ".data":
                segment = "data"
            elif head == ".globl":
                pass
            elif head == ".loopbound":
                pending_loopbound = self._parse_uint(rest, lineno)
            elif head == ".frame":
                if segment != "text":
                    raise AssemblerError(".frame outside .text", lineno)
                # Declares the stack-frame size of the function starting at
                # the current address (the directive follows its label).
                self.frame_sizes[text_addr] = self._parse_uint(rest, lineno)
            elif head == ".subtask":
                k = self._parse_uint(rest, lineno)
                if k > max_subtask + 1:
                    raise AssemblerError(
                        f"sub-task {k} declared before {max_subtask + 1}", lineno
                    )
                if k >= MAX_SUBTASKS:
                    raise AssemblerError(
                        f"sub-task index {k} exceeds MAX_SUBTASKS", lineno
                    )
                max_subtask = max(max_subtask, k)
                self.subtask_marks[text_addr] = k
                text_addr = self._emit_snippet(
                    _subtask_snippet(k), lineno, raw, text_addr
                )
            elif head == ".taskend":
                if max_subtask < 0:
                    raise AssemblerError(".taskend without .subtask", lineno)
                text_addr = self._emit_snippet(
                    _taskend_snippet(max_subtask), lineno, raw, text_addr
                )
            elif head in (".word", ".float", ".space", ".align"):
                if segment != "data":
                    raise AssemblerError(f"{head} outside .data", lineno)
                data_addr = self._data_directive(head, rest, lineno, data_addr)
            elif head.startswith("."):
                raise AssemblerError(f"unknown directive {head}", lineno)
            else:
                if segment != "text":
                    raise AssemblerError("instruction outside .text", lineno)
                for mnem, ops in self._expand(head, rest, lineno):
                    self.insts.append(_PendingInst(mnem, ops, lineno, raw, text_addr))
                    self.source_map[text_addr] = (lineno, raw)
                    text_addr += 4

        if pending_loopbound is not None:
            raise AssemblerError(".loopbound not followed by a label")

    def _emit_snippet(
        self,
        snippet: list[tuple[str, list[str]]],
        lineno: int,
        raw: str,
        text_addr: int,
    ) -> int:
        for mnem, ops in snippet:
            for emnem, eops in self._expand(mnem, ", ".join(ops), lineno):
                self.insts.append(
                    _PendingInst(emnem, eops, lineno, raw, text_addr)
                )
                self.source_map[text_addr] = (lineno, raw)
                text_addr += 4
        return text_addr

    def _data_directive(
        self, head: str, rest: str, lineno: int, data_addr: int
    ) -> int:
        if head == ".align":
            power = self._parse_uint(rest, lineno)
            step = 1 << power
            return (data_addr + step - 1) & ~(step - 1)
        if head == ".space":
            nbytes = self._parse_uint(rest, lineno)
            if nbytes % 4:
                raise AssemblerError(".space must be a multiple of 4", lineno)
            for offset in range(0, nbytes, 4):
                self.data_items.append(_DataItem(data_addr + offset, 0, lineno))
            return data_addr + nbytes
        values = [v.strip() for v in rest.split(",")] if rest else []
        if not values:
            raise AssemblerError(f"{head} needs at least one value", lineno)
        for value in values:
            if head == ".word":
                try:
                    self.data_items.append(
                        _DataItem(data_addr, self._parse_int(value, lineno), lineno)
                    )
                except AssemblerError:
                    # Symbol reference (possibly sym+offset); pass 2 resolves.
                    self.data_items.append(_DataItem(data_addr, value, lineno))
            else:  # .float
                try:
                    self.data_items.append(_DataItem(data_addr, float(value), lineno))
                except ValueError:
                    raise AssemblerError(f"bad float {value!r}", lineno) from None
            data_addr += 4
        return data_addr

    def _allocate_visa_arrays(self) -> None:
        """Reserve __visa_incr / __visa_aet after all explicit data."""
        if not self.subtask_marks:
            return
        n = max(self.subtask_marks.values()) + 1
        addr = self.data_base
        if self.data_items:
            addr = max(item.addr for item in self.data_items) + 4
        addr = (addr + 63) & ~63  # own cache line, keeps analysis clean
        for name in (layout.VISA_INCR_SYMBOL, layout.VISA_AET_SYMBOL):
            if name in self.symbols:
                raise AssemblerError(f"{name} is reserved")
            self.symbols[name] = addr
            for k in range(n):
                self.data_items.append(_DataItem(addr + 4 * k, 0, 0))
            addr += 4 * n
            addr = (addr + 63) & ~63

    # -- pseudo-instruction expansion ------------------------------------------

    def _expand(
        self, mnem: str, rest: str, lineno: int
    ) -> list[tuple[str, list[str]]]:
        ops = [o.strip() for o in rest.split(",")] if rest else []

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{mnem} expects {count} operands, got {len(ops)}", lineno
                )

        if mnem == "nop":
            need(0)
            return [("sll", ["zero", "zero", "0"])]
        if mnem == "li":
            need(2)
            value = self._parse_int(ops[1], lineno)
            if -(1 << 15) <= value < (1 << 15):
                return [("addi", [ops[0], "zero", str(value)])]
            if 0 <= value < (1 << 16):
                return [("ori", [ops[0], "zero", str(value)])]
            unsigned = value & 0xFFFFFFFF
            high, low = unsigned >> 16, unsigned & 0xFFFF
            out = [("lui", [ops[0], str(high)])]
            if low:
                out.append(("ori", [ops[0], ops[0], str(low)]))
            return out
        if mnem == "la":
            need(2)
            return [
                ("lui", [ops[0], f"%hi({ops[1]})"]),
                ("ori", [ops[0], ops[0], f"%lo({ops[1]})"]),
            ]
        if mnem == "move":
            need(2)
            return [("add", [ops[0], ops[1], "zero"])]
        if mnem == "not":
            need(2)
            return [("nor", [ops[0], ops[1], "zero"])]
        if mnem == "neg":
            need(2)
            return [("sub", [ops[0], "zero", ops[1]])]
        if mnem == "b":
            need(1)
            return [("j", [ops[0]])]
        if mnem == "beqz":
            need(2)
            return [("beq", [ops[0], "zero", ops[1]])]
        if mnem == "bnez":
            need(2)
            return [("bne", [ops[0], "zero", ops[1]])]
        if mnem == "bgt":
            need(3)
            return [("blt", [ops[1], ops[0], ops[2]])]
        if mnem == "ble":
            need(3)
            return [("bge", [ops[1], ops[0], ops[2]])]
        if mnem == "subi":
            need(3)
            value = self._parse_int(ops[2], lineno)
            return [("addi", [ops[0], ops[1], str(-value)])]
        if mnem not in BY_NAME:
            raise AssemblerError(f"unknown instruction {mnem!r}", lineno)
        return [(mnem, ops)]

    # -- pass 2 ---------------------------------------------------------------

    def _pass2(self) -> list[int]:
        words = []
        for pending in self.insts:
            inst = self._build(pending)
            try:
                words.append(encode(inst))
            except Exception as exc:
                raise AssemblerError(str(exc), pending.line) from exc
        return words

    def _build(self, pending: _PendingInst) -> Instruction:
        info: OpInfo = BY_NAME[pending.mnemonic]
        slots = [s for s in info.syntax.split(",") if s]
        if len(slots) != len(pending.operands):
            raise AssemblerError(
                f"{pending.mnemonic} expects {len(slots)} operands "
                f"({info.syntax}), got {len(pending.operands)}",
                pending.line,
            )
        fields: dict[str, int] = {}
        for slot, operand in zip(slots, pending.operands):
            self._fill_slot(info, slot, operand, pending, fields)
        return Instruction(info.op, addr=pending.addr, **fields)

    def _fill_slot(
        self,
        info: OpInfo,
        slot: str,
        operand: str,
        pending: _PendingInst,
        fields: dict[str, int],
    ) -> None:
        line = pending.line
        if slot in ("rd", "fd"):
            fields["rd"] = self._reg(slot, operand, line)
        elif slot in ("rs", "fs"):
            fields["rs"] = self._reg(slot, operand, line)
        elif slot in ("rt", "ft"):
            fields["rt"] = self._reg(slot, operand, line)
        elif slot == "shamt":
            fields["shamt"] = self._parse_uint(operand, line)
        elif slot == "imm":
            fields["imm"] = self._imm(operand, line)
        elif slot == "label":
            target = self._symbol(operand, line)
            offset = target - (pending.addr + 4)
            if offset % 4:
                raise AssemblerError(f"misaligned branch target {operand}", line)
            fields["imm"] = offset >> 2
        elif slot == "target":
            target = self._symbol(operand, line)
            if (target & 0xF0000000) != ((pending.addr + 4) & 0xF0000000):
                raise AssemblerError(f"jump target {operand} out of region", line)
            fields["target"] = (target >> 2) & 0x3FFFFFF
        elif slot == "off(rs)":
            match = _MEM_RE.match(operand)
            if not match:
                raise AssemblerError(f"bad memory operand {operand!r}", line)
            offset_text = match.group(1).strip()
            fields["imm"] = self._imm(offset_text, line) if offset_text else 0
            fields["rs"] = self._reg("rs", match.group(2), line)
        else:  # pragma: no cover - table is static
            raise AssemblerError(f"internal: unknown slot {slot}")

    def _reg(self, slot: str, operand: str, line: int) -> int:
        try:
            if slot.startswith("f"):
                return parse_fp_reg(operand)
            return parse_int_reg(operand)
        except KeyError as exc:
            raise AssemblerError(str(exc), line) from exc

    def _imm(self, text: str, line: int) -> int:
        match = _HILO_RE.match(text)
        if match:
            which, name, offset = match.group(1), match.group(2), match.group(3)
            addr = self._symbol(name, line)
            if offset:
                addr += int(offset.replace(" ", ""))
            value = (addr >> 16) & 0xFFFF if which == "hi" else addr & 0xFFFF
            return value
        return self._parse_int(text, line)

    def _symbol(self, text: str, line: int) -> int:
        text = text.strip()
        if text in self.symbols:
            return self.symbols[text]
        # symbol+offset
        for sep in ("+", "-"):
            if sep in text[1:]:
                base, _, off = text.rpartition(sep)
                base = base.strip()
                if base in self.symbols and off.strip().isdigit():
                    delta = int(off.strip())
                    return self.symbols[base] + (delta if sep == "+" else -delta)
        try:
            return self._parse_int(text, line)
        except AssemblerError:
            raise AssemblerError(f"undefined symbol {text!r}", line) from None

    def _parse_int(self, text: str, line: int | None = None) -> int:
        try:
            return int(text.strip(), 0)
        except (ValueError, AttributeError):
            raise AssemblerError(f"bad integer {text!r}", line) from None

    def _parse_uint(self, text: str, line: int | None = None) -> int:
        value = self._parse_int(text, line)
        if value < 0:
            raise AssemblerError(f"expected non-negative integer, got {value}", line)
        return value

    def _data_value(self, item: _DataItem) -> object:
        if isinstance(item.value, str):
            try:
                return self._symbol(item.value, item.line)
            except AssemblerError:
                raise AssemblerError(
                    f"undefined symbol {item.value!r} in .word", item.line
                ) from None
        return item.value


def _subtask_snippet(k: int) -> list[tuple[str, list[str]]]:
    """Instructions emitted at the start of sub-task ``k`` (paper §2.2/§4.3).

    For k == 0: reset the cycle counter, load the initial watchdog value
    from ``__visa_incr[0]``, and enable the watchdog.
    For k > 0: record sub-task k-1's AET, reset the cycle counter, and
    advance the watchdog deadline by ``__visa_incr[k]``.
    """
    mmio_hi = str(layout.MMIO_BASE >> 16)
    cyc = str(layout.CYCLE_COUNT & 0xFFFF)
    if k == 0:
        return [
            ("lui", ["k1", mmio_hi]),
            ("sw", ["zero", f"{cyc}(k1)"]),
            ("la", ["k0", layout.VISA_INCR_SYMBOL]),
            ("lw", ["k0", "0(k0)"]),
            ("sw", ["k0", f"{layout.WATCHDOG_COUNT & 0xFFFF}(k1)"]),
            ("addi", ["at", "zero", "1"]),
            ("sw", ["at", f"{layout.WATCHDOG_CTRL & 0xFFFF}(k1)"]),
        ]
    return [
        ("lui", ["k1", mmio_hi]),
        ("lw", ["k0", f"{cyc}(k1)"]),
        ("la", ["at", layout.VISA_AET_SYMBOL]),
        ("sw", ["k0", f"{4 * (k - 1)}(at)"]),
        ("sw", ["zero", f"{cyc}(k1)"]),
        ("la", ["at", layout.VISA_INCR_SYMBOL]),
        ("lw", ["k0", f"{4 * k}(at)"]),
        ("sw", ["k0", f"{layout.WATCHDOG_ADD & 0xFFFF}(k1)"]),
    ]


def _taskend_snippet(last_k: int) -> list[tuple[str, list[str]]]:
    """Instructions emitted at task end: record final AET, disable watchdog."""
    mmio_hi = str(layout.MMIO_BASE >> 16)
    return [
        ("lui", ["k1", mmio_hi]),
        ("lw", ["k0", f"{layout.CYCLE_COUNT & 0xFFFF}(k1)"]),
        ("la", ["at", layout.VISA_AET_SYMBOL]),
        ("sw", ["k0", f"{4 * last_k}(at)"]),
        ("sw", ["zero", f"{layout.WATCHDOG_CTRL & 0xFFFF}(k1)"]),
    ]


def assemble(
    source: str,
    text_base: int = layout.TEXT_BASE,
    data_base: int = layout.DATA_BASE,
) -> Program:
    """Assemble RTP-32 source text into a :class:`Program`.

    Args:
        source: Assembly source.
        text_base: Base address for the text segment.
        data_base: Base address for the data segment.

    Raises:
        AssemblerError: on any syntax or semantic error (with line number).
    """
    return _Assembler(source, text_base, data_base).run()
