"""Loadable program image: code, data, symbols, and analysis annotations.

A :class:`Program` is what the assembler (and therefore the mini-C compiler)
produces, what both pipeline simulators load, and what the static WCET
analyzer consumes.  Besides the raw words it carries the side tables a
timing analyzer needs:

* ``loop_bounds`` — maximum iteration counts per loop-header address
  (from ``.loopbound`` directives / mini-C ``for`` bounds),
* ``subtask_marks`` — address of the first instruction of each sub-task
  (from ``.subtask`` directives), used to partition the task for EQ 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa import layout
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction


@dataclass
class Program:
    """An assembled RTP-32 program.

    Attributes:
        words: Encoded instruction words, in order from ``text_base``.
        data: Initial data image, word address -> value (int or float).
        symbols: Label name -> absolute address.
        loop_bounds: Loop-header instruction address -> max iterations.
        subtask_marks: Instruction address -> sub-task index (0-based).
        entry: Address execution starts at.
        text_base: Base address of the text segment.
        data_base: Base address of the data segment.
        source_map: Instruction address -> (line number, source text).
        frame_sizes: Function entry address -> declared stack-frame bytes
            (from ``.frame`` directives); advisory metadata the static
            analyzer cross-checks against the actual prologue.
    """

    words: list[int]
    data: dict[int, object]
    symbols: dict[str, int]
    loop_bounds: dict[int, int] = field(default_factory=dict)
    subtask_marks: dict[int, int] = field(default_factory=dict)
    entry: int = layout.TEXT_BASE
    text_base: int = layout.TEXT_BASE
    data_base: int = layout.DATA_BASE
    source_map: dict[int, tuple[int, str]] = field(default_factory=dict)
    frame_sizes: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._insts: list[Instruction] = [
            decode(word, self.text_base + 4 * i)
            for i, word in enumerate(self.words)
        ]
        self._fast_plan: list | None = None
        # Compiled block tables (repro.isa.blockjit), keyed by
        # (engine, cache geometry, pipeline params).
        self._blockjit_tables: dict = {}

    # -- code access ---------------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """Decoded instructions, in address order."""
        return self._insts

    @property
    def text_end(self) -> int:
        """First address past the text segment."""
        return self.text_base + 4 * len(self.words)

    def contains(self, addr: int) -> bool:
        """True when ``addr`` holds an instruction of this program."""
        return self.text_base <= addr < self.text_end and addr % 4 == 0

    def inst_at(self, addr: int) -> Instruction:
        """Return the instruction at ``addr``.

        Raises:
            ReproError: if ``addr`` is outside the text segment.
        """
        if not self.contains(addr):
            raise ReproError(f"no instruction at {addr:#x}")
        return self._insts[(addr - self.text_base) >> 2]

    def fast_plan(self) -> list:
        """Specialized executors for every instruction (compiled once).

        See :mod:`repro.isa.fastexec` for the entry layout.  Both pipeline
        hot loops consume this instead of re-dispatching through the
        reference :func:`repro.isa.semantics.execute` per instruction.
        """
        if self._fast_plan is None:
            from repro.isa.fastexec import build_plan

            self._fast_plan = build_plan(self._insts)
        return self._fast_plan

    def address_of(self, symbol: str) -> int:
        """Return the address of ``symbol``.

        Raises:
            KeyError: if the symbol is not defined.
        """
        return self.symbols[symbol]

    # -- VISA metadata --------------------------------------------------------

    @property
    def num_subtasks(self) -> int:
        """Number of sub-tasks marked in this program (0 if unmarked)."""
        if not self.subtask_marks:
            return 0
        return max(self.subtask_marks.values()) + 1

    def subtask_boundaries(self) -> list[int]:
        """Sub-task start addresses in sub-task order.

        Raises:
            ReproError: if marks are missing or out of order.
        """
        by_index: dict[int, int] = {}
        for addr, idx in self.subtask_marks.items():
            if idx in by_index:
                raise ReproError(f"duplicate sub-task index {idx}")
            by_index[idx] = addr
        n = self.num_subtasks
        if sorted(by_index) != list(range(n)):
            raise ReproError("sub-task indices are not contiguous from 0")
        addrs = [by_index[i] for i in range(n)]
        if addrs != sorted(addrs):
            raise ReproError("sub-task marks are not in address order")
        return addrs

    def describe(self, addr: int) -> str:
        """Human-readable location string for diagnostics."""
        if addr in self.source_map:
            line, text = self.source_map[addr]
            return f"{addr:#x} (line {line}: {text.strip()})"
        return f"{addr:#x}"
