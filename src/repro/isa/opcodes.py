"""Opcode tables, instruction formats, and execution latencies for RTP-32.

Every instruction is described declaratively by an :class:`OpInfo` record:
its binary encoding slots, its assembly operand syntax, the functional-unit
class it executes on, and its execution latency.  The latencies follow the
MIPS R10000, as required by Table 1 of the paper.

The single source of truth here is consumed by the assembler, the
encoder/decoder, the disassembler, both pipeline simulators, and the static
WCET analyzer, so the timing model can never drift between the dynamic and
static sides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Fmt(enum.Enum):
    """Binary instruction format."""

    R = "R"  # opcode | rs | rt | rd | shamt | funct
    I = "I"  # opcode | rs | rt | imm16
    J = "J"  # opcode | target26
    F = "F"  # FP: opcode 0x11 | fs | ft | fd | 0 | funct


class FuClass(enum.Enum):
    """Functional-unit operation class, keyed to an execution latency."""

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FPADD = "fpadd"
    FPMUL = "fpmul"
    FPDIV = "fpdiv"
    FPSQRT = "fpsqrt"
    FPCMP = "fpcmp"
    CONV = "conv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


#: Execution latency in cycles per functional-unit class (MIPS R10K).
#: For loads/stores this is the address-generation + cache-hit latency;
#: cache misses add memory stall time on top (Table 1: 100 ns worst case).
LATENCY = {
    FuClass.IALU: 1,
    FuClass.IMUL: 6,
    FuClass.IDIV: 35,
    FuClass.FPADD: 2,
    FuClass.FPMUL: 2,
    FuClass.FPDIV: 12,
    FuClass.FPSQRT: 18,
    FuClass.FPCMP: 2,
    FuClass.CONV: 2,
    FuClass.LOAD: 1,
    FuClass.STORE: 1,
    FuClass.BRANCH: 1,
    FuClass.JUMP: 1,
    FuClass.SYSTEM: 1,
}


class Op(enum.Enum):
    """All RTP-32 machine instructions (pseudo-instructions excluded)."""

    # Integer R-type.
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    JR = "jr"
    JALR = "jalr"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    # Integer I-type.
    ADDI = "addi"
    SLTI = "slti"
    SLTIU = "sltiu"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    LUI = "lui"
    LW = "lw"
    SW = "sw"
    # Branches (I-type, PC-relative word offset).
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLT = "blt"
    BGE = "bge"
    # Jumps (J-type).
    J = "j"
    JAL = "jal"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FABS = "fabs"
    FNEG = "fneg"
    FMOV = "fmov"
    FEQ = "feq"
    FLT_ = "flt"
    FLE = "fle"
    ITOF = "itof"
    FTOI = "ftoi"
    FLW = "flw"
    FSW = "fsw"
    # System.
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one machine instruction.

    Attributes:
        op: The instruction.
        fmt: Binary format.
        opcode: Primary 6-bit opcode.
        funct: 6-bit function code for R/F formats (None otherwise).
        syntax: Comma-separated operand syntax, using slot names:
            ``rd rs rt`` (int regs), ``fd fs ft`` (FP regs), ``imm``
            (16-bit immediate), ``shamt``, ``label`` (branch target),
            ``target`` (jump target), ``off(base)`` (memory operand).
        cls: Functional-unit class (selects latency).
    """

    op: Op
    fmt: Fmt
    opcode: int
    funct: int | None
    syntax: str
    cls: FuClass

    @property
    def latency(self) -> int:
        """Execution latency in cycles (cache hits assumed for memory ops)."""
        return LATENCY[self.cls]


OP_SPECIAL = 0x00
OP_FP = 0x11
OP_SYS = 0x3F

_TABLE: tuple[OpInfo, ...] = (
    # Integer R-type (opcode 0x00).
    OpInfo(Op.SLL, Fmt.R, OP_SPECIAL, 0x00, "rd,rt,shamt", FuClass.IALU),
    OpInfo(Op.SRL, Fmt.R, OP_SPECIAL, 0x02, "rd,rt,shamt", FuClass.IALU),
    OpInfo(Op.SRA, Fmt.R, OP_SPECIAL, 0x03, "rd,rt,shamt", FuClass.IALU),
    OpInfo(Op.SLLV, Fmt.R, OP_SPECIAL, 0x04, "rd,rt,rs", FuClass.IALU),
    OpInfo(Op.SRLV, Fmt.R, OP_SPECIAL, 0x06, "rd,rt,rs", FuClass.IALU),
    OpInfo(Op.SRAV, Fmt.R, OP_SPECIAL, 0x07, "rd,rt,rs", FuClass.IALU),
    OpInfo(Op.JR, Fmt.R, OP_SPECIAL, 0x08, "rs", FuClass.JUMP),
    OpInfo(Op.JALR, Fmt.R, OP_SPECIAL, 0x09, "rd,rs", FuClass.JUMP),
    OpInfo(Op.MUL, Fmt.R, OP_SPECIAL, 0x18, "rd,rs,rt", FuClass.IMUL),
    OpInfo(Op.DIV, Fmt.R, OP_SPECIAL, 0x1A, "rd,rs,rt", FuClass.IDIV),
    OpInfo(Op.REM, Fmt.R, OP_SPECIAL, 0x1B, "rd,rs,rt", FuClass.IDIV),
    OpInfo(Op.ADD, Fmt.R, OP_SPECIAL, 0x20, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.SUB, Fmt.R, OP_SPECIAL, 0x22, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.AND, Fmt.R, OP_SPECIAL, 0x24, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.OR, Fmt.R, OP_SPECIAL, 0x25, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.XOR, Fmt.R, OP_SPECIAL, 0x26, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.NOR, Fmt.R, OP_SPECIAL, 0x27, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.SLT, Fmt.R, OP_SPECIAL, 0x2A, "rd,rs,rt", FuClass.IALU),
    OpInfo(Op.SLTU, Fmt.R, OP_SPECIAL, 0x2B, "rd,rs,rt", FuClass.IALU),
    # Integer I-type.
    OpInfo(Op.ADDI, Fmt.I, 0x08, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.SLTI, Fmt.I, 0x0A, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.SLTIU, Fmt.I, 0x0B, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.ANDI, Fmt.I, 0x0C, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.ORI, Fmt.I, 0x0D, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.XORI, Fmt.I, 0x0E, None, "rt,rs,imm", FuClass.IALU),
    OpInfo(Op.LUI, Fmt.I, 0x0F, None, "rt,imm", FuClass.IALU),
    OpInfo(Op.LW, Fmt.I, 0x23, None, "rt,off(rs)", FuClass.LOAD),
    OpInfo(Op.SW, Fmt.I, 0x2B, None, "rt,off(rs)", FuClass.STORE),
    OpInfo(Op.BEQ, Fmt.I, 0x04, None, "rs,rt,label", FuClass.BRANCH),
    OpInfo(Op.BNE, Fmt.I, 0x05, None, "rs,rt,label", FuClass.BRANCH),
    OpInfo(Op.BLEZ, Fmt.I, 0x06, None, "rs,label", FuClass.BRANCH),
    OpInfo(Op.BGTZ, Fmt.I, 0x07, None, "rs,label", FuClass.BRANCH),
    OpInfo(Op.BLT, Fmt.I, 0x14, None, "rs,rt,label", FuClass.BRANCH),
    OpInfo(Op.BGE, Fmt.I, 0x15, None, "rs,rt,label", FuClass.BRANCH),
    # Jumps.
    OpInfo(Op.J, Fmt.J, 0x02, None, "target", FuClass.JUMP),
    OpInfo(Op.JAL, Fmt.J, 0x03, None, "target", FuClass.JUMP),
    # Floating point (opcode 0x11); fs in rs slot, ft in rt slot, fd in rd.
    OpInfo(Op.FADD, Fmt.F, OP_FP, 0x00, "fd,fs,ft", FuClass.FPADD),
    OpInfo(Op.FSUB, Fmt.F, OP_FP, 0x01, "fd,fs,ft", FuClass.FPADD),
    OpInfo(Op.FMUL, Fmt.F, OP_FP, 0x02, "fd,fs,ft", FuClass.FPMUL),
    OpInfo(Op.FDIV, Fmt.F, OP_FP, 0x03, "fd,fs,ft", FuClass.FPDIV),
    OpInfo(Op.FSQRT, Fmt.F, OP_FP, 0x04, "fd,fs", FuClass.FPSQRT),
    OpInfo(Op.FABS, Fmt.F, OP_FP, 0x05, "fd,fs", FuClass.FPADD),
    OpInfo(Op.FNEG, Fmt.F, OP_FP, 0x06, "fd,fs", FuClass.FPADD),
    OpInfo(Op.FMOV, Fmt.F, OP_FP, 0x07, "fd,fs", FuClass.FPADD),
    # FP compares write an *integer* register (rd slot).
    OpInfo(Op.FEQ, Fmt.F, OP_FP, 0x10, "rd,fs,ft", FuClass.FPCMP),
    OpInfo(Op.FLT_, Fmt.F, OP_FP, 0x11, "rd,fs,ft", FuClass.FPCMP),
    OpInfo(Op.FLE, Fmt.F, OP_FP, 0x12, "rd,fs,ft", FuClass.FPCMP),
    # Conversions: itof fd <- int rs ; ftoi int rd <- fs.
    OpInfo(Op.ITOF, Fmt.F, OP_FP, 0x20, "fd,rs", FuClass.CONV),
    OpInfo(Op.FTOI, Fmt.F, OP_FP, 0x21, "rd,fs", FuClass.CONV),
    # FP memory.
    OpInfo(Op.FLW, Fmt.I, 0x31, None, "ft,off(rs)", FuClass.LOAD),
    OpInfo(Op.FSW, Fmt.I, 0x39, None, "ft,off(rs)", FuClass.STORE),
    # System.
    OpInfo(Op.HALT, Fmt.R, OP_SYS, 0x00, "", FuClass.SYSTEM),
)

#: Op -> OpInfo.
INFO: dict[Op, OpInfo] = {rec.op: rec for rec in _TABLE}

#: Mnemonic string -> OpInfo (for the assembler).
BY_NAME: dict[str, OpInfo] = {rec.op.value: rec for rec in _TABLE}

#: (opcode, funct-or-None) -> OpInfo (for the decoder).
BY_ENCODING: dict[tuple[int, int | None], OpInfo] = {}
for _rec in _TABLE:
    _key = (_rec.opcode, _rec.funct if _rec.fmt in (Fmt.R, Fmt.F) else None)
    assert _key not in BY_ENCODING, f"duplicate encoding {_key}"
    BY_ENCODING[_key] = _rec

#: Ops that read memory / write memory.
LOAD_OPS = frozenset({Op.LW, Op.FLW})
STORE_OPS = frozenset({Op.SW, Op.FSW})
#: Conditional branches (eligible for static/dynamic prediction).
BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLEZ, Op.BGTZ, Op.BLT, Op.BGE}
)
#: Direct jumps (target known at fetch from the instruction word).
DIRECT_JUMP_OPS = frozenset({Op.J, Op.JAL})
#: Indirect jumps (target known only at execute; fetch stalls in the VISA).
INDIRECT_JUMP_OPS = frozenset({Op.JR, Op.JALR})
#: All control-transfer instructions.
CONTROL_OPS = BRANCH_OPS | DIRECT_JUMP_OPS | INDIRECT_JUMP_OPS
