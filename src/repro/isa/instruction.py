"""Decoded-instruction representation for RTP-32.

:class:`Instruction` is the unit that flows through both pipeline simulators
and the static analyzer.  Register operands are exposed uniformly as
``(bank, number)`` pairs, where ``bank`` is ``"i"`` (integer) or ``"f"``
(floating point), so pipeline hazard logic never needs per-opcode special
cases.

Instances are immutable once built and are created either by the assembler
or by :func:`repro.isa.encoding.decode`.
"""

from __future__ import annotations

from repro.isa.opcodes import (
    BRANCH_OPS,
    DIRECT_JUMP_OPS,
    INDIRECT_JUMP_OPS,
    INFO,
    LOAD_OPS,
    STORE_OPS,
    Fmt,
    FuClass,
    Op,
)
from repro.isa.registers import RA

IntReg = int
RegRef = tuple[str, int]  # ("i" | "f", register number)


class Instruction:
    """One decoded RTP-32 instruction.

    Attributes:
        op: The :class:`~repro.isa.opcodes.Op`.
        rd, rs, rt: Register slots.  For FP instructions the same slots hold
            fd/fs/ft respectively; use :attr:`sources` / :attr:`dest` for
            bank-aware access.
        shamt: Shift amount for immediate shifts.
        imm: Sign-interpreted 16-bit immediate (branch offsets in words).
        target: 26-bit jump target field for J-format.
        addr: Instruction address once placed in a program image (else None).
    """

    __slots__ = (
        "op", "rd", "rs", "rt", "shamt", "imm", "target", "addr",
        "sources", "dest", "info", "latency", "is_load", "is_store",
        "is_branch", "is_direct_jump", "is_indirect_jump", "is_control",
        "is_mem", "fu_class",
    )

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        shamt: int = 0,
        imm: int = 0,
        target: int = 0,
        addr: int | None = None,
    ):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.shamt = shamt
        self.imm = imm
        self.target = target
        self.addr = addr
        self.info = INFO[op]
        self.latency = self.info.latency
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_mem = self.is_load or self.is_store
        self.is_branch = op in BRANCH_OPS
        self.is_direct_jump = op in DIRECT_JUMP_OPS
        self.is_indirect_jump = op in INDIRECT_JUMP_OPS
        self.is_control = (
            self.is_branch or self.is_direct_jump or self.is_indirect_jump
        )
        self.fu_class = self.info.cls
        self.sources, self.dest = _operand_map(self)

    def with_addr(self, addr: int) -> "Instruction":
        """Return a copy of this instruction placed at ``addr``."""
        return Instruction(
            self.op, self.rd, self.rs, self.rt,
            self.shamt, self.imm, self.target, addr,
        )

    def branch_target(self) -> int:
        """Absolute target address of a conditional branch.

        Branch offsets are in words relative to the *next* instruction,
        matching MIPS semantics.
        """
        assert self.is_branch and self.addr is not None
        return self.addr + 4 + (self.imm << 2)

    def jump_target(self) -> int:
        """Absolute target address of a direct jump (J-format)."""
        assert self.is_direct_jump and self.addr is not None
        return ((self.addr + 4) & 0xF0000000) | (self.target << 2)

    def is_backward_branch(self) -> bool:
        """True when this conditional branch targets a lower address.

        The VISA's static predictor predicts backward branches taken and
        forward branches not-taken (BTFN).
        """
        assert self.is_branch
        return self.imm < 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.disassembler import disassemble_instruction

        where = f"@{self.addr:#x}" if self.addr is not None else ""
        return f"<{disassemble_instruction(self)}{where}>"


def _operand_map(inst: Instruction) -> tuple[tuple[RegRef, ...], RegRef | None]:
    """Compute (sources, dest) register references for ``inst``."""
    op = inst.op
    fmt = inst.info.fmt
    syntax = inst.info.syntax

    if op is Op.HALT:
        return (), None
    if op is Op.J:
        return (), None
    if op is Op.JAL:
        return (), ("i", RA)
    if op is Op.JR:
        return (("i", inst.rs),), None
    if op is Op.JALR:
        return (("i", inst.rs),), ("i", inst.rd)
    if op is Op.LUI:
        return (), ("i", inst.rt)
    if inst.is_branch:
        if op in (Op.BLEZ, Op.BGTZ):
            return (("i", inst.rs),), None
        return (("i", inst.rs), ("i", inst.rt)), None
    if op is Op.LW:
        return (("i", inst.rs),), ("i", inst.rt)
    if op is Op.FLW:
        return (("i", inst.rs),), ("f", inst.rt)
    if op is Op.SW:
        return (("i", inst.rs), ("i", inst.rt)), None
    if op is Op.FSW:
        return (("i", inst.rs), ("f", inst.rt)), None
    if fmt is Fmt.F:
        if op in (Op.FEQ, Op.FLT_, Op.FLE):
            return (("f", inst.rs), ("f", inst.rt)), ("i", inst.rd)
        if op is Op.ITOF:
            return (("i", inst.rs),), ("f", inst.rd)
        if op is Op.FTOI:
            return (("f", inst.rs),), ("i", inst.rd)
        if "ft" in syntax:  # 3-operand FP arithmetic
            return (("f", inst.rs), ("f", inst.rt)), ("f", inst.rd)
        return (("f", inst.rs),), ("f", inst.rd)  # 2-operand FP
    if fmt is Fmt.I:  # immediate ALU
        return (("i", inst.rs),), ("i", inst.rt)
    # R-type ALU / shifts.
    if "shamt" in syntax:
        return (("i", inst.rt),), ("i", inst.rd)
    if syntax == "rd,rt,rs":  # variable shifts
        return (("i", inst.rt), ("i", inst.rs)), ("i", inst.rd)
    return (("i", inst.rs), ("i", inst.rt)), ("i", inst.rd)


#: Latency classes that keep the single VISA function unit busy for more
#: than one cycle (structural hazard source in the in-order pipeline).
MULTI_CYCLE_CLASSES = frozenset(
    {
        FuClass.IMUL,
        FuClass.IDIV,
        FuClass.FPADD,
        FuClass.FPMUL,
        FuClass.FPDIV,
        FuClass.FPSQRT,
        FuClass.FPCMP,
        FuClass.CONV,
    }
)
