"""Disassembler for RTP-32 instruction words.

Produces assembler-compatible text: for any instruction the assembler can
emit, ``assemble(disassemble(encode(inst)))`` round-trips (modulo label
names, which become absolute addresses).
"""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INFO
from repro.isa.registers import fp_reg_name, int_reg_name


def disassemble_instruction(inst: Instruction) -> str:
    """Render one decoded instruction as assembly text."""
    info = INFO[inst.op]
    slots = [s for s in info.syntax.split(",") if s]
    rendered = []
    for slot in slots:
        if slot == "rd":
            rendered.append(int_reg_name(inst.rd))
        elif slot == "fd":
            rendered.append(fp_reg_name(inst.rd))
        elif slot == "rs":
            rendered.append(int_reg_name(inst.rs))
        elif slot == "fs":
            rendered.append(fp_reg_name(inst.rs))
        elif slot == "rt":
            rendered.append(int_reg_name(inst.rt))
        elif slot == "ft":
            rendered.append(fp_reg_name(inst.rt))
        elif slot == "shamt":
            rendered.append(str(inst.shamt))
        elif slot == "imm":
            rendered.append(str(inst.imm))
        elif slot == "label":
            if inst.addr is not None:
                rendered.append(hex(inst.branch_target()))
            else:
                rendered.append(f".{inst.imm:+d}")
        elif slot == "target":
            if inst.addr is not None:
                rendered.append(hex(inst.jump_target()))
            else:
                rendered.append(hex(inst.target << 2))
        elif slot == "off(rs)":
            rendered.append(f"{inst.imm}({int_reg_name(inst.rs)})")
    if not rendered:
        return inst.op.value
    return f"{inst.op.value} {', '.join(rendered)}"


def disassemble(word: int, addr: int | None = None) -> str:
    """Decode and render a 32-bit instruction word."""
    return disassemble_instruction(decode(word, addr))


def symbol_context(program, addr: int) -> str:
    """Render ``addr`` relative to its enclosing text symbol.

    Returns e.g. ``"main+0x14"`` (or ``"main"`` at the symbol itself); an
    empty string when no text symbol lies at or below ``addr``.  Used by
    the static analyzer to anchor diagnostics to readable locations.
    """
    if not (program.text_base <= addr < program.text_end):
        return ""
    best_name, best_addr = "", -1
    for name, sym_addr in program.symbols.items():
        if sym_addr <= addr and sym_addr > best_addr:
            if program.text_base <= sym_addr < program.text_end:
                best_name, best_addr = name, sym_addr
    if best_addr < 0:
        return f"{addr:#x}"
    offset = addr - best_addr
    return best_name if offset == 0 else f"{best_name}+{offset:#x}"


__all__ = ["disassemble", "disassemble_instruction", "symbol_context"]
