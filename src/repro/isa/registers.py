"""Register definitions and ABI names for RTP-32.

Integer registers follow the MIPS o32 convention.  ``r0`` reads as zero and
ignores writes.  Floating-point registers are ``f0`` .. ``f31``; by
convention ``f0``/``f2`` hold FP return values, ``f12``-``f15`` FP arguments,
``f20``-``f31`` are callee-saved.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

# ABI names in register order r0..r31.
INT_REG_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

# Canonical indices used throughout the code base.
ZERO = 0
AT = 1
V0, V1 = 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
T8, T9 = 24, 25
K0, K1 = 26, 27
GP, SP, FP, RA = 28, 29, 30, 31

# Caller-saved (temporary) and callee-saved integer registers usable by the
# compiler's register allocator.  ``at``/``k0``/``k1`` are reserved for the
# assembler and runtime snippets.
CALLER_SAVED_INT = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)
CALLEE_SAVED_INT = (S0, S1, S2, S3, S4, S5, S6, S7)
ARG_INT = (A0, A1, A2, A3)

CALLER_SAVED_FP = tuple(range(4, 20))
CALLEE_SAVED_FP = tuple(range(20, 32))
ARG_FP = (12, 13, 14, 15)
FP_RETURN = 0

_INT_NAME_TO_NUM = {name: i for i, name in enumerate(INT_REG_NAMES)}
_INT_NAME_TO_NUM.update({f"r{i}": i for i in range(NUM_INT_REGS)})
_FP_NAME_TO_NUM = {f"f{i}": i for i in range(NUM_FP_REGS)}


def parse_int_reg(name: str) -> int:
    """Return the register number for an integer register name.

    Accepts ABI names (``sp``, ``t0``), numeric names (``r29``), and an
    optional leading ``$``.

    >>> parse_int_reg("$sp")
    29
    >>> parse_int_reg("r0")
    0
    """
    key = name.lstrip("$").lower()
    if key not in _INT_NAME_TO_NUM:
        raise KeyError(f"unknown integer register {name!r}")
    return _INT_NAME_TO_NUM[key]


def parse_fp_reg(name: str) -> int:
    """Return the register number for a floating-point register name.

    >>> parse_fp_reg("$f12")
    12
    """
    key = name.lstrip("$").lower()
    if key not in _FP_NAME_TO_NUM:
        raise KeyError(f"unknown FP register {name!r}")
    return _FP_NAME_TO_NUM[key]


def int_reg_name(num: int) -> str:
    """Return the canonical ABI name of integer register ``num``."""
    return INT_REG_NAMES[num]


def fp_reg_name(num: int) -> str:
    """Return the canonical name of FP register ``num``."""
    return f"f{num}"
