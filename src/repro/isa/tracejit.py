"""Superblock/trace tier above the basic-block JIT (:mod:`blockjit`).

The block JIT (PR 5) still re-enters the dispatch loop at every basic
block: short loop bodies pay the call/unpack/sync overhead dozens of
times per iteration.  This module adds the next tier.  The dispatchers
in :mod:`blockjit` profile per-block dispatch counts; once a block
crosses :data:`HOT_THRESHOLD`, the chain starting there is stitched
into one *superblock* function:

* chain formation follows the static BTFN prediction (``ptaken``) at
  conditional branches and the target at direct jumps, stops at
  indirect jumps, halts, and safe-break addresses (sub-task marks +
  entry — the breakpoint guarantee of the block dispatcher must keep
  holding, so those are trace barriers, never trace-interior), and
  *unrolls* loops by revisiting blocks until the instruction budget;
* chain-interior conditional branches become **side exits**: the
  branch executes in full (timing, counters, predictor training,
  watchdog check), then a mismatch with the chain's assumed direction
  syncs state and returns the off-chain pc to the block dispatcher;
* within the stitched function registers stay live in locals across
  the block boundaries (the :class:`blockjit._Regs` tracker simply
  keeps running), the per-boundary block-exit sync disappears by
  construction, and icache guaranteed-hit batching extends across the
  whole chain;
* a conservative, order-preserving textual **peephole pass**
  (:func:`_peephole`, in the spirit of the ``mini32_compiler.py``
  exemplar: if in doubt, leave the code unchanged) then removes
  redundant register writebacks across stitch points, folds trivial
  literal arithmetic, and deletes dead pure SSA stores.

Trace functions share the block functions' signature and return
protocol, so they install directly *over* the hot block's entry in
``BlockTable.blocks`` — both dispatchers consume them with no extra
lookup.  The bit-identical contract of :mod:`blockjit` carries over
unchanged.  Compiled traces persist next to the block payloads under
``.repro_cache/blockjit/`` as ``{engine}-{key}.traces.json`` with the
same format-version/digest keying.
"""

from __future__ import annotations

import base64
import json
import marshal
import re
import sys
from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.isa import blockjit
from repro.isa.fastexec import K_BRANCH, K_HALT, K_INDIRECT, K_JUMP

if TYPE_CHECKING:
    from pathlib import Path

#: Bump when the emitted trace code changes shape; stale entries miss.
TRACE_CODEGEN_VERSION = 2

#: Dispatch count at which a block is promoted to a trace head.
HOT_THRESHOLD = 16

#: Instruction budget per trace (bounds codegen size and compile time).
MAX_TRACE_INSTS = 384

#: Stitched-segment budget per trace (also bounds loop unrolling).
MAX_TRACE_BLOCKS = 64

#: Trace-count budget per table (bounds total codegen work per program).
MAX_TRACES = 48

#: (start pc, [(pc, fastinst), ...], stitched successor pc or None).
Segment = tuple[int, list[tuple[int, Any]], int | None]


def _trace_fname(engine: str, pc: int) -> str:
    return f"_t{pc:x}" if engine == "inorder" else f"_u{pc:x}"


# --- chain formation ----------------------------------------------------------


def _successor(last_pc: int, fi: Any) -> int | None:
    """Statically-assumed next pc after the block ending in ``fi``.

    Conditional branches follow BTFN (the plan's ``ptaken``), direct
    jumps their target, cap-split blocks the fall-through; indirect
    jumps and halts end the chain.
    """
    kind, npc, starget, ptaken = fi[0], fi[8], fi[9], fi[10]
    if kind == K_BRANCH:
        if starget == npc:
            return npc
        return int(starget) if ptaken else int(npc)
    if kind == K_JUMP:
        return int(starget)
    if kind == K_INDIRECT or kind == K_HALT:
        return None
    return last_pc + 4


def form_chain(table: Any, head: int) -> list[Segment] | None:
    """The stitchable chain starting at ``head``, or None if unprofitable.

    Safe-break addresses are barriers: they may head a trace but never
    appear at an interior position, so the dispatcher's between-dispatch
    breakpoint check stays exact.  A successor revisiting a block
    already in the chain (including ``head`` itself) ends the chain:
    back edges return to the dispatcher, which re-enters the trace at
    its head.  Statically unrolling the loop instead looks attractive
    but loses badly in practice — the BTFN assumption holds only until
    the dynamic trip count runs out, so the loop-exit branch side-exits
    somewhere inside the unrolled body on *every* call and the trace
    never completes (the recorded ``side_exit_rate: 1.0`` pathology).
    """
    program = table.program
    barriers = table.safe_breaks
    segments: list[Segment] = []
    seen: set[int] = set()
    back_edge = False
    n_insts = 0
    pc = head
    while True:
        insts = blockjit._collect_block(program, pc, barriers)
        last_pc, last_fi = insts[-1]
        seen.add(pc)
        n_insts += len(insts)
        nxt = _successor(last_pc, last_fi)
        if (
            nxt is None
            or nxt in seen
            or nxt in barriers
            or not program.contains(nxt)
            or n_insts >= MAX_TRACE_INSTS
            or len(segments) + 1 >= MAX_TRACE_BLOCKS
        ):
            back_edge = nxt is not None and nxt in seen
            segments.append((pc, insts, None))
            break
        segments.append((pc, insts, nxt))
        pc = nxt
    if len(segments) < 2 and not back_edge:
        # A straight-line single block gains nothing over its block
        # function; a self-looping one does (watchdog-elided body, one
        # completion per iteration), so back edges keep the chain.
        return None
    return segments


# --- stitched emission --------------------------------------------------------


def _emit_segments(em: Any, segments: list[Segment]) -> None:
    """Drive an emitter's ``_inst`` across every segment, inserting side
    exits at chain-interior terminators."""
    idx = 0
    last = len(segments) - 1
    for s, (_bpc, insts, nxt) in enumerate(segments):
        n = len(insts)
        for j, (ipc, fi) in enumerate(insts):
            em._inst(idx, ipc, fi, is_last=(s == last and j == n - 1))
            idx += 1
        if s != last:
            _stitch(em, idx - 1, insts[-1][1], nxt)


def _stitch(em: Any, i: int, fi: Any, nxt: int | None) -> None:
    """Side exit (if needed) after the chain-interior terminator ``fi``.

    The terminator already executed in full (timing, counters,
    predictor training, the per-instruction watchdog check); here we
    only leave the trace when the runtime outcome disagrees with the
    chain's assumed direction.  Direct jumps and fall-throughs continue
    unconditionally.
    """
    kind, npc, starget = fi[0], fi[8], fi[9]
    if kind != K_BRANCH:
        return
    if isinstance(em, blockjit._OOOEmitter):
        # The branch may have moved the redirect: the next fetch-group
        # formation must use the fully dynamic block-entry form.
        em._dyn_group = True
    if starget == npc:
        return
    if nxt == starget:
        cond, off = f"if not k{i}:", int(npc)
    else:
        cond, off = f"if k{i}:", int(starget)
    em.emit("    ", cond)
    em.emit("        ", "_tr[1] += 1")
    em.emit("        ", f"_sx[{off}] = _sx_get({off}, 0) + 1")
    em._exit("        ", str(off), str(off))


class _InOrderTraceEmitter(blockjit._InOrderEmitter):
    """Stitched in-order superblock emitter (signature ``_t{pc:x}``)."""

    def emit_trace(self, head: int, segments: list[Segment]) -> str:
        g = self.g
        # Traces are specialized for a disabled watchdog (the common
        # case): the entry guard delegates to the head's block function
        # (per-inst checks intact) when wd is truthy, and any MMIO store
        # that may flip wd gets a guarded side exit instead.
        self._wd_elide = True
        lines = [
            f"def {_trace_fname('inorder', head)}(ir, fr, ready, st, env):",
            "    _tr[0] += 1",
            "    if st[20]:",
            f"        return {blockjit._fname('inorder', head)}"
            "(ir, fr, ready, st, env)",
            f"    ({blockjit._INORDER_ENV}) = env",
            f"    ({blockjit._INORDER_ST}) = st",
        ]
        sets_used = sorted({
            (ipc >> g.ishift) % g.insets
            for _, insts, _ in segments for ipc, _ in insts
        })
        lines += [f"    iw{setk} = isets[{setk}]" for setk in sets_used]
        _emit_segments(self, segments)
        return "\n".join(lines + _peephole(self.lines)) + "\n"


class _OOOTraceEmitter(blockjit._OOOEmitter):
    """Stitched complex-mode superblock emitter (signature ``_u{pc:x}``).

    Emits for whichever timing scheduler the owning table was built for
    (the ``event`` constructor flag): the env/st unpack strings and the
    per-instruction bodies (inherited from :class:`blockjit._OOOEmitter`)
    switch together, so a trace always matches its block functions.
    """

    def emit_trace(self, head: int, segments: list[Segment]) -> str:
        self._wd_elide = True
        env_names = (
            blockjit._OOO_ENV_EVENT if self.event else blockjit._OOO_ENV
        )
        st_names = (
            blockjit._OOO_ST_EVENT if self.event else blockjit._OOO_ST
        )
        lines = [
            f"def {_trace_fname('ooo', head)}(ir, fr, ready, st, env):",
            "    _tr[0] += 1",
            "    if st[21]:",
            f"        return {blockjit._fname('ooo', head)}"
            "(ir, fr, ready, st, env)",
            f"    ({env_names}) = env",
            f"    ({st_names}) = st",
        ]
        _emit_segments(self, segments)
        return "\n".join(lines + _peephole(self.lines)) + "\n"


def _emit_trace(
    engine: str, geom: Any, params: Any, head: int, segments: list[Segment],
    sched: str = "scan",
) -> str:
    if engine == "inorder":
        return _InOrderTraceEmitter(geom).emit_trace(head, segments)
    em = _OOOTraceEmitter(geom, params, event=sched == "event")
    return em.emit_trace(head, segments)


# --- peephole pass over the emitted source ------------------------------------

_SPILL_RE = re.compile(r"^(\s+)((?:ir|fr)\[\d+\]) = (\S+)$")
_TARGET_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*) [-+*/|&^]?= ")
_SSA_ASSIGN_RE = re.compile(r"^\s+([a-z]{1,2}\d+) = (.+)$")
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_CALL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\(")
_FLOATY_RE = re.compile(r"\bF\d|\bfr\[")
_ADD_ZERO_RE = re.compile(r" \+ 0\b")
_SHIFT_ZERO_RE = re.compile(r" (?:<<|>>) 0\b")
_LIT_ADD_RE = re.compile(r"(?<![\w.\])])(\d+) \+ (\d+)(?![\w.])")


def _fold_line(line: str) -> str:
    """Trivial literal arithmetic on one line (integer contexts only).

    ``X + 0`` / ``X << 0`` drop the operation and adjacent int literals
    fold; lines touching FP state are left alone (``-0.0 + 0`` is not
    ``-0.0``), as is anything the patterns don't match exactly.
    """
    if _FLOATY_RE.search(line):
        return line
    line = _ADD_ZERO_RE.sub("", line)
    line = _SHIFT_ZERO_RE.sub("", line)
    while True:
        folded = _LIT_ADD_RE.sub(
            lambda m: str(int(m.group(1)) + int(m.group(2))), line, count=1
        )
        if folded == line:
            return line
        line = folded


def _dedup_spills(lines: list[str]) -> list[str]:
    """Drop register writebacks that re-store an unchanged value.

    Tracks the last value token stored to each ``ir[k]``/``fr[k]`` home.
    Only *unconditional* stores (function-body base indent) update the
    tracked state; stores inside an arm may be dropped when they match
    it (the path to them passed the recording store) but never record —
    the not-taken path would disagree.  Any assignment to a local
    invalidates homes caching that token.
    """
    homes: dict[str, str] = {}
    out: list[str] = []
    for line in lines:
        m = _SPILL_RE.match(line)
        if m:
            ind, home, val = m.group(1), m.group(2), m.group(3)
            if homes.get(home) == val:
                continue
            if len(ind) == 4:
                homes[home] = val
            else:
                homes.pop(home, None)
            out.append(line)
            continue
        t = _TARGET_RE.match(line)
        if t:
            token = t.group(1)
            for home in [h for h, v in homes.items() if v == token]:
                del homes[home]
        out.append(line)
    return out


def _drop_adjacent_syncs(lines: list[str]) -> list[str]:
    """A state sync immediately shadowed by another (same indent, nothing
    between) is dead; keep only the later one."""
    out: list[str] = []
    for line in lines:
        stripped = line.lstrip()
        if (
            stripped.startswith("st[:] = (")
            and out
            and out[-1].lstrip().startswith("st[:] = (")
            and len(out[-1]) - len(out[-1].lstrip())
            == len(line) - len(stripped)
        ):
            out.pop()
        out.append(line)
    return out


def _drop_dead_stores(lines: list[str]) -> list[str]:
    """Remove pure assignments to SSA locals that are never read.

    Only plain ``name = expr`` lines where ``name`` matches the
    emitters' SSA shape (letters + instruction index), ``expr`` contains
    no call and no subscript (nothing that could raise or mutate), and
    ``name`` occurs nowhere else in the function.  Iterates to a
    fixpoint since a drop can orphan earlier defs.
    """
    while True:
        counts = Counter(
            word for line in lines for word in _WORD_RE.findall(line)
        )
        kept: list[str] = []
        changed = False
        for line in lines:
            m = _SSA_ASSIGN_RE.match(line)
            if (
                m
                and counts[m.group(1)] == 1
                and "[" not in m.group(2)
                and not _CALL_RE.search(m.group(2))
            ):
                changed = True
                continue
            kept.append(line)
        if not changed:
            return kept
        lines = kept


def _peephole(lines: list[str]) -> list[str]:
    """Conservative order-preserving cleanup of emitted trace source.

    Textual and order preserving, following the ``mini32_compiler.py``
    exemplar: every rule either provably preserves the generated code's
    observable behaviour or does not fire.
    """
    lines = _dedup_spills(lines)
    lines = [_fold_line(line) for line in lines]
    lines = _drop_adjacent_syncs(lines)
    lines = blockjit._tighten_max(lines)
    return _drop_dead_stores(lines)


# --- compilation, installation, and on-disk persistence -----------------------


def compile_trace(table: Any, head: int) -> Any | None:
    """Stitch, peephole, compile, and install the trace headed at ``head``.

    Returns the installed ``(function, n_insts)`` entry, or None when no
    profitable chain exists.  The entry replaces ``table.blocks[head]``
    so both dispatchers pick it up with their normal lookup.
    """
    if len(table.traces_meta) >= MAX_TRACES:
        return None
    segments = form_chain(table, head)
    if segments is None:
        return None
    source = _emit_trace(
        table.engine, table.geom, table.params, head, segments, table.sched
    )
    code = compile(source, f"<tracejit:{table.engine}:{head:#x}>", "exec")
    exec(code, table._ns)  # noqa: S102 - executing our own codegen
    n_insts = sum(len(insts) for _, insts, _ in segments)
    entry = (table._ns[_trace_fname(table.engine, head)], n_insts)
    table.blocks[head] = entry
    table.traces_meta[head] = (
        _trace_fname(table.engine, head), len(segments), n_insts
    )
    table.trace_sources[head] = source
    table.trace_codes[head] = code
    _store_traces(table)
    return entry


def _trace_path(table: Any) -> "Path":
    from repro.snapshot import runcache

    return (
        runcache.cache_dir() / "blockjit"
        / f"{table.engine}-{table.disk_key}.traces.json"
    )


def _store_traces(table: Any) -> None:
    """Persist every installed trace of ``table`` (atomic full rewrite).

    Each trace's already-compiled code object is marshalled individually
    — nothing is recompiled here, so the cost of storing trace *n* is
    O(total trace bytes), not O(n * compile time).
    """
    from repro.snapshot import runcache
    from repro.snapshot.state import FORMAT_VERSION

    if runcache.cache_disabled() or table.disk_key is None:
        return
    runcache.atomic_write_json(_trace_path(table), {
        "format": FORMAT_VERSION,
        "codegen": blockjit.CODEGEN_VERSION,
        "trace_codegen": TRACE_CODEGEN_VERSION,
        "engine": table.engine,
        "python": sys.implementation.cache_tag,
        "sources": {str(h): s for h, s in table.trace_sources.items()},
        "codes": {
            str(h): base64.b64encode(marshal.dumps(c)).decode("ascii")
            for h, c in table.trace_codes.items()
        },
        "traces": {
            str(h): list(m) for h, m in table.traces_meta.items()
        },
    })
    runcache.STATS["tracejit_stores"] += 1


def load_traces(table: Any) -> None:
    """Warm-load persisted traces into ``table`` (install over blocks)."""
    from repro.snapshot import runcache
    from repro.snapshot.state import FORMAT_VERSION

    if runcache.cache_disabled() or table.disk_key is None:
        return
    try:
        payload = json.loads(_trace_path(table).read_text())
    except (OSError, ValueError):
        runcache.STATS["tracejit_misses"] += 1
        return
    if (
        not isinstance(payload, dict)
        or payload.get("format") != FORMAT_VERSION
        or payload.get("codegen") != blockjit.CODEGEN_VERSION
        or payload.get("trace_codegen") != TRACE_CODEGEN_VERSION
        or payload.get("engine") != table.engine
        or not isinstance(payload.get("sources"), dict)
        or not isinstance(payload.get("traces"), dict)
    ):
        runcache.STATS["tracejit_misses"] += 1
        return
    sources = {int(h): str(s) for h, s in payload["sources"].items()}
    marshalled = payload.get("codes")
    same_python = payload.get("python") == sys.implementation.cache_tag
    if not isinstance(marshalled, dict):
        marshalled = {}
    for shead, (fname, n_blocks, n_insts) in payload["traces"].items():
        head = int(shead)
        if head not in sources:
            continue
        if blockjit._fname(table.engine, head) not in table._ns:
            # The entry guard delegates to the head's block function by
            # name.  Heads that were dynamic dispatch targets (compiled
            # on demand, never persisted) have no function in a freshly
            # restored namespace yet — compile the block before the
            # trace is installed over its table slot.
            try:
                table.block_at(head)
            except ReproError:
                continue
        code = None
        if same_python and shead in marshalled:
            try:
                code = marshal.loads(base64.b64decode(marshalled[shead]))
            except (ValueError, EOFError, TypeError):
                code = None
        if code is None:
            code = compile(
                sources[head],
                f"<tracejit:{table.engine}:{head:#x}>", "exec",
            )
        exec(code, table._ns)  # noqa: S102 - executing our own (cached) codegen
        table.blocks[head] = (table._ns[fname], int(n_insts))
        table.traces_meta[head] = (str(fname), int(n_blocks), int(n_insts))
        table.trace_sources[head] = sources[head]
        table.trace_codes[head] = code
    runcache.STATS["tracejit_hits"] += 1


__all__ = [
    "HOT_THRESHOLD",
    "MAX_TRACE_BLOCKS",
    "MAX_TRACE_INSTS",
    "MAX_TRACES",
    "TRACE_CODEGEN_VERSION",
    "compile_trace",
    "form_chain",
    "load_traces",
]
